#include "spmd/context.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/env.hpp"
#include "vp/payload.hpp"

namespace tdp::spmd {

namespace {

long long env_recv_timeout_ms() {
  // Checked parse: a mistyped deadline warns and reads as "wait forever"
  // instead of silently parsing its numeric prefix.
  static const long long cached = util::env_int(
      "TDP_RECV_TIMEOUT_MS", 0, 0, std::numeric_limits<long long>::max());
  return cached;
}

// Programmatic override; negative = defer to the environment.
std::atomic<long long> g_timeout_override{-1};

}  // namespace

long long recv_timeout_ms() {
  const long long o = g_timeout_override.load(std::memory_order_relaxed);
  return o >= 0 ? o : env_recv_timeout_ms();
}

void set_recv_timeout_ms(long long ms) {
  g_timeout_override.store(ms, std::memory_order_relaxed);
}

bool launched_from_env() {
  const char* kind = std::getenv("TDP_TRANSPORT");
  if (kind == nullptr || std::strcmp(kind, "uds") != 0) return false;
  const int rank = env_rank();
  const int size = env_size();
  return rank >= 0 && size >= 1 && rank < size;
}

int env_rank() { return util::env_int32("TDP_RANK", -1, 0, 1 << 20); }

int env_size() { return util::env_int32("TDP_SIZE", -1, 1, 1 << 20); }

std::uint64_t env_comm() {
  return static_cast<std::uint64_t>(
      util::env_int("TDP_COMM", 1, 1, std::numeric_limits<long long>::max()));
}

SpmdContext context_from_env(vp::Machine& machine) {
  if (!launched_from_env()) {
    throw std::runtime_error(
        "tdp::spmd::context_from_env: not launched (TDP_TRANSPORT=uds with "
        "TDP_RANK/TDP_SIZE is required; see tools/tdp_launch)");
  }
  const int size = env_size();
  if (machine.nprocs() != size) {
    throw std::runtime_error(
        "tdp::spmd::context_from_env: Machine has " +
        std::to_string(machine.nprocs()) + " processors but TDP_SIZE=" +
        std::to_string(size));
  }
  std::vector<int> procs(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) procs[static_cast<std::size_t>(i)] = i;
  return SpmdContext(machine, env_comm(), std::move(procs), env_rank());
}

SpmdContext::SpmdContext(vp::Machine& machine, std::uint64_t comm,
                         std::vector<int> processors, int index)
    : machine_(machine),
      comm_(comm),
      processors_(std::move(processors)),
      index_(index) {
  if (processors_.empty() || index_ < 0 ||
      index_ >= static_cast<int>(processors_.size())) {
    throw std::invalid_argument("SpmdContext: bad group or index");
  }
}

void SpmdContext::send_bytes(int dst_index, int tag,
                             std::span<const std::byte> bytes) {
  send_payload(dst_index, tag, vp::Payload::copy_of(bytes));
}

void SpmdContext::send_payload(int dst_index, int tag, vp::Payload payload) {
  if (dst_index < 0 || dst_index >= nprocs()) {
    throw std::out_of_range("SpmdContext::send_payload: bad destination index");
  }
  vp::Message m;
  m.cls = vp::MessageClass::DataParallel;
  m.comm = comm_;
  m.tag = tag;
  m.src = index_;  // group index; comm scoping isolates the call
  m.payload = std::move(payload);
  machine_.send(processors_[static_cast<std::size_t>(dst_index)],
                std::move(m));
  ++sent_count_;
}

void SpmdContext::send_poison(int dst_index, int tag, int origin_index) {
  if (dst_index < 0 || dst_index >= nprocs()) {
    throw std::out_of_range("SpmdContext::send_poison: bad destination index");
  }
  vp::Message m;
  m.cls = vp::MessageClass::DataParallel;
  m.comm = comm_;
  m.tag = tag;
  m.src = index_;
  m.poison_origin = origin_index;
  machine_.send(processors_[static_cast<std::size_t>(dst_index)],
                std::move(m));
  ++sent_count_;
}

std::vector<std::byte> SpmdContext::recv_bytes(int src_index, int tag) {
  return recv_payload(src_index, tag).to_vector();
}

vp::Payload SpmdContext::recv_payload(int src_index, int tag) {
  if (src_index < 0 || src_index >= nprocs()) {
    throw std::out_of_range("SpmdContext::recv_payload: bad source index");
  }
  const long long timeout = recv_timeout_ms();
  vp::Mailbox& box = machine_.mailbox(proc());
  vp::Message m;
  try {
    m = timeout > 0
            ? box.receive_for(vp::MessageClass::DataParallel, comm_, tag,
                              src_index, static_cast<std::uint64_t>(timeout))
            : box.receive(vp::MessageClass::DataParallel, comm_, tag,
                          src_index);
  } catch (const vp::ReceiveTimeout& t) {
    // Over a multi-process transport, a deadline is often secondary damage:
    // the peer process died and its message will never come.  Fold the
    // transport's peer-health roll into the error so the failure names the
    // dead rank instead of reading like an ordinary lost message.
    const std::string note = machine_.transport_diagnostic();
    if (note.empty()) throw;
    throw vp::ReceiveTimeout(std::string(t.what()) + " [" + note + "]",
                             t.owner, t.has_detail, t.cls, t.comm, t.tag,
                             t.src);
  }
  if (m.poison_origin >= 0) {
    throw coll::Poisoned(
        "tdp::spmd: collective poisoned: copy " +
            std::to_string(m.poison_origin) + " stalled upstream (poison " +
            "relayed by copy " + std::to_string(m.src) + " on tag " +
            std::to_string(tag) + ", comm " + std::to_string(comm_) + ")",
        m.poison_origin);
  }
  return std::move(m.payload);
}

void SpmdContext::recv_bytes_into(int src_index, int tag,
                                  std::span<std::byte> out) {
  vp::Payload p = recv_payload(src_index, tag);
  if (p.size() != out.size()) {
    // Never truncate silently: a size mismatch here is always a protocol
    // bug (mismatched element type or count between sender and receiver).
    throw std::runtime_error(
        "SpmdContext::recv: size mismatch on tag " + std::to_string(tag) +
        " from src " + std::to_string(src_index) + ": received " +
        std::to_string(p.size()) + " bytes into a " +
        std::to_string(out.size()) + "-byte buffer");
  }
  if (!out.empty()) {
    std::memcpy(out.data(), p.data(), out.size());
    vp::note_bytes_delivered(out.size());
  }
}

double SpmdContext::allreduce_sum(double v) {
  return allreduce_value<double>(v, [](const double& a, const double& b) {
    return a + b;
  });
}

double SpmdContext::allreduce_max(double v) {
  return allreduce_value<double>(v, [](const double& a, const double& b) {
    return a > b ? a : b;
  });
}

int SpmdContext::allreduce_max_int(int v) {
  return allreduce_value<int>(
      v, [](const int& a, const int& b) { return a > b ? a : b; });
}

}  // namespace tdp::spmd
