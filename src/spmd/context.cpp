#include "spmd/context.hpp"

#include <stdexcept>

namespace tdp::spmd {

SpmdContext::SpmdContext(vp::Machine& machine, std::uint64_t comm,
                         std::vector<int> processors, int index)
    : machine_(machine),
      comm_(comm),
      processors_(std::move(processors)),
      index_(index) {
  if (processors_.empty() || index_ < 0 ||
      index_ >= static_cast<int>(processors_.size())) {
    throw std::invalid_argument("SpmdContext: bad group or index");
  }
}

void SpmdContext::send_bytes(int dst_index, int tag,
                             std::span<const std::byte> bytes) {
  if (dst_index < 0 || dst_index >= nprocs()) {
    throw std::out_of_range("SpmdContext::send_bytes: bad destination index");
  }
  vp::Message m;
  m.cls = vp::MessageClass::DataParallel;
  m.comm = comm_;
  m.tag = tag;
  m.src = index_;  // group index; comm scoping isolates the call
  m.payload.assign(bytes.begin(), bytes.end());
  machine_.send(processors_[static_cast<std::size_t>(dst_index)],
                std::move(m));
  ++sent_count_;
}

std::vector<std::byte> SpmdContext::recv_bytes(int src_index, int tag) {
  if (src_index < 0 || src_index >= nprocs()) {
    throw std::out_of_range("SpmdContext::recv_bytes: bad source index");
  }
  vp::Message m = machine_.mailbox(proc()).receive(
      vp::MessageClass::DataParallel, comm_, tag, src_index);
  return std::move(m.payload);
}

void SpmdContext::barrier() {
  const std::byte token{0};
  const std::span<const std::byte> one(&token, 1);
  if (index_ == 0) {
    for (int i = 1; i < nprocs(); ++i) {
      (void)recv_bytes(i, kBarrierUpTag);
    }
    for (int i = 1; i < nprocs(); ++i) {
      send_bytes(i, kBarrierDownTag, one);
    }
  } else {
    send_bytes(0, kBarrierUpTag, one);
    (void)recv_bytes(0, kBarrierDownTag);
  }
}

double SpmdContext::allreduce_sum(double v) {
  return allreduce_value<double>(v, [](const double& a, const double& b) {
    return a + b;
  });
}

double SpmdContext::allreduce_max(double v) {
  return allreduce_value<double>(v, [](const double& a, const double& b) {
    return a > b ? a : b;
  });
}

int SpmdContext::allreduce_max_int(int v) {
  return allreduce_value<int>(
      v, [](const int& a, const int& b) { return a > b ? a : b; });
}

}  // namespace tdp::spmd
