// Execution context for one copy of an SPMD data-parallel program
// (§3.1.4, §3.5).
//
// A distributed call runs one copy of the called program on each processor
// of a group.  Each copy receives an SpmdContext giving it
//   * its index within the group and the processor array (the thesis makes
//     relocatability a requirement: processor numbers must come from the
//     array passed with the call, never be hard-wired);
//   * point-to-point typed send/receive *within the group*, scoped by the
//     call's communicator id so that concurrent distributed calls can never
//     intercept each other's messages (§3.4.1, fig. 3.4);
//   * the collective operations (barrier, broadcast, reduce, allreduce,
//     gather, allgather, exchange) an adapted SPMD library needs (§D).
//
// Payload ownership: message bodies are immutable refcounted buffers
// (vp::Payload).  The span-based send/recv entry points copy exactly once
// at each user-facing boundary (caller span -> payload on send, payload ->
// caller span on receive); the payload-based entry points (send_payload,
// recv_payload, broadcast_payload) move only a handle.  The tree
// collectives in spmd/coll.hpp exploit this to fan one buffer out to P-1
// peers with zero substrate copies.
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "obs/trace.hpp"
#include "spmd/coll.hpp"
#include "vp/machine.hpp"

namespace tdp::spmd {

/// The default receive deadline applied by SpmdContext::recv (and thus
/// every collective), in milliseconds: the TDP_RECV_TIMEOUT_MS environment
/// variable (cached on first read), unless overridden programmatically.
/// 0 means wait forever — the pre-deadline behaviour.
long long recv_timeout_ms();

/// Programmatic override of the default receive deadline (tests,
/// embedders).  Negative restores the environment value.
void set_recv_timeout_ms(long long ms);

// --- Multi-process bootstrap (TDP_TRANSPORT=uds). ---------------------------
//
// tools/tdp_launch forks one OS process per rank with TDP_RANK, TDP_SIZE,
// TDP_UDS_DIR and TDP_TRANSPORT=uds in the environment.  A program that
// wants to run both ways (threads in one process, or one process per rank
// under the launcher) branches on launched_from_env():
//
//   vp::Machine machine(spmd::launched_from_env() ? spmd::env_size() : P);
//   if (spmd::launched_from_env()) {
//     spmd::SpmdContext ctx = spmd::context_from_env(machine);
//     run(ctx);                       // this process is one rank
//   } else {
//     ...spawn P threads, each with its own SpmdContext...
//   }

/// True when this process was launched as one rank of a multi-process set
/// (TDP_TRANSPORT=uds with a valid TDP_RANK/TDP_SIZE pair).
bool launched_from_env();

/// This process's rank per TDP_RANK, or -1 when not launched.
int env_rank();

/// The launched world size per TDP_SIZE, or -1 when not launched.
int env_size();

/// The communicator id the launched group agrees on: TDP_COMM, default 1.
/// Machine::next_comm() cannot serve here — each rank process has its own
/// counter, and a communicator must be identical across the group.
std::uint64_t env_comm();

class SpmdContext;

/// The context of this rank within the launched group: index = TDP_RANK,
/// processors = [0, TDP_SIZE), comm = env_comm().  `machine` must have
/// been constructed with env_size() processors (so its transport attached
/// to the launched set).  Throws std::runtime_error when not launched.
SpmdContext context_from_env(vp::Machine& machine);

class SpmdContext {
 public:
  /// Constructs the context of copy `index` of a call distributed over
  /// `processors` with communicator id `comm`.
  SpmdContext(vp::Machine& machine, std::uint64_t comm,
              std::vector<int> processors, int index);

  int index() const { return index_; }
  int nprocs() const { return static_cast<int>(processors_.size()); }
  int proc() const { return processors_[static_cast<std::size_t>(index_)]; }
  const std::vector<int>& processors() const { return processors_; }
  std::uint64_t comm() const { return comm_; }
  vp::Machine& machine() { return machine_; }

  // --- Point-to-point (group indices, not raw processor numbers). ---------

  /// Copies `bytes` into a fresh payload and sends it (the caller may
  /// reuse its buffer immediately).
  void send_bytes(int dst_index, int tag, std::span<const std::byte> bytes);

  /// Sends an already-wrapped payload without any copy; senders fanning one
  /// buffer out to many destinations pass the same payload repeatedly.
  void send_payload(int dst_index, int tag, vp::Payload payload);

  /// Receives into caller-owned storage (one delivery copy).
  std::vector<std::byte> recv_bytes(int src_index, int tag);

  /// Borrow-style receive: hands back the sender's buffer without a copy.
  /// When a receive deadline is configured (recv_timeout_ms() > 0) and no
  /// matching message arrives in time, throws vp::ReceiveTimeout naming the
  /// awaited (class, comm, tag, src) — a lost message surfaces as a typed
  /// error at the abstraction boundary instead of an eternal hang.
  vp::Payload recv_payload(int src_index, int tag);

  /// Receives into `out`, which must match the received size exactly;
  /// throws std::runtime_error naming tag, source and both sizes otherwise
  /// (a silent truncation here is always a protocol bug).
  void recv_bytes_into(int src_index, int tag, std::span<std::byte> out);

  /// Sends a poison marker instead of data: the receiver's recv_payload
  /// will throw coll::Poisoned naming `origin_index` (the group index of
  /// the originally stalled copy).  Used by the tree collectives so a copy
  /// whose own receive timed out still discharges its forwarding duty —
  /// its subtree fails fast blaming the right peer instead of timing out
  /// one level at a time blaming each forwarder.
  void send_poison(int dst_index, int tag, int origin_index);

  template <typename T>
  void send(int dst_index, int tag, std::span<const T> data) {
    send_bytes(dst_index, tag,
               std::as_bytes(std::span<const T>(data.data(), data.size())));
  }

  template <typename T>
  void send_value(int dst_index, int tag, const T& v) {
    send(dst_index, tag, std::span<const T>(&v, 1));
  }

  template <typename T>
  void recv(int src_index, int tag, std::span<T> out) {
    recv_bytes_into(src_index, tag, std::as_writable_bytes(out));
  }

  template <typename T>
  T recv_value(int src_index, int tag) {
    T v{};
    recv(src_index, tag, std::span<T>(&v, 1));
    return v;
  }

  // --- Collectives over the group. -----------------------------------------
  //
  // Algorithms live in spmd/coll.hpp: logarithmic-depth trees by default,
  // the original linear loops under TDP_COLL=linear.  All variants use only
  // the reserved tags below and this context's communicator id, preserving
  // the §3.4.1 isolation of concurrent distributed calls.

  /// All copies must arrive before any proceeds.
  void barrier() { coll::barrier(*this); }

  /// Root's buffer is copied to every copy's buffer.
  template <typename T>
  void broadcast(std::span<T> data, int root) {
    coll::broadcast(*this, std::as_writable_bytes(data), root);
  }

  /// Payload-level broadcast: the root publishes `mine`; every copy (root
  /// included) returns a handle to that one buffer — zero payload copies
  /// regardless of group size.  `mine` is ignored on non-roots.
  vp::Payload broadcast_payload(vp::Payload mine, int root) {
    return coll::broadcast_payload(*this, std::move(mine), root);
  }

  /// Element-wise reduction of every copy's buffer into root's buffer
  /// (non-root buffers are left unchanged).  `op` must be associative;
  /// operands are kept in index order, so non-commutative associative
  /// operators give the same result in both algorithm families up to
  /// re-association.
  template <typename T>
  void reduce(std::span<T> data, int root,
              const std::function<T(const T&, const T&)>& op) {
    coll::reduce(*this, std::as_writable_bytes(data), root,
                 byte_combine<T>(op));
  }

  /// Element-wise reduction into every copy's buffer.
  template <typename T>
  void allreduce(std::span<T> data,
                 const std::function<T(const T&, const T&)>& op) {
    coll::allreduce(*this, std::as_writable_bytes(data), byte_combine<T>(op));
  }

  /// Scalar allreduce convenience.
  template <typename T>
  T allreduce_value(T v, const std::function<T(const T&, const T&)>& op) {
    allreduce(std::span<T>(&v, 1), op);
    return v;
  }

  double allreduce_sum(double v);
  double allreduce_max(double v);
  int allreduce_max_int(int v);

  /// Gathers equal-sized contributions to root, concatenated in index
  /// order.  Deliberately linear in every algorithm family: the P-1 blocks
  /// must land at the root either way, and the linear form receives each
  /// straight into its destination slot with no staging.
  template <typename T>
  std::vector<T> gather(std::span<const T> mine, int root) {
    obs::Span span(obs::Op::CollGather, comm_,
                   mine.size() * sizeof(T), nullptr);
    if (index_ == root) {
      std::vector<T> out(mine.size() * static_cast<std::size_t>(nprocs()));
      for (int i = 0; i < nprocs(); ++i) {
        std::span<T> slot(out.data() + mine.size() * static_cast<std::size_t>(i),
                          mine.size());
        if (i == root) {
          std::copy(mine.begin(), mine.end(), slot.begin());
        } else {
          recv(i, kGatherTag, slot);
        }
      }
      return out;
    }
    send(root, kGatherTag, mine);
    return {};
  }

  /// Equal-sized contributions concatenated in index order on every copy.
  template <typename T>
  std::vector<T> allgather(std::span<const T> mine) {
    std::vector<T> all(mine.size() * static_cast<std::size_t>(nprocs()));
    coll::allgather(*this, std::as_bytes(mine),
                    std::as_writable_bytes(std::span<T>(all)));
    return all;
  }

  /// Inclusive prefix reduction in index order: copy i's buffer becomes
  /// op(data_0, ..., data_i) elementwise.  A genuine dependence chain;
  /// linear in every algorithm family.
  template <typename T>
  void scan(std::span<T> data, const std::function<T(const T&, const T&)>& op) {
    obs::Span span(obs::Op::CollScan, comm_, data.size() * sizeof(T), nullptr);
    if (index_ > 0) {
      vp::Payload incoming = recv_payload(index_ - 1, kScanTag);
      const T* in = reinterpret_cast<const T*>(incoming.data());
      for (std::size_t k = 0; k < data.size(); ++k) {
        data[k] = op(in[k], data[k]);
      }
    }
    if (index_ + 1 < nprocs()) {
      send(index_ + 1, kScanTag, std::span<const T>(data));
    }
  }

  /// Full personalised exchange: `mine` holds nprocs() blocks of
  /// `block` elements, block j destined for copy j; the result holds the
  /// blocks received from every copy, in index order.  Fully pairwise
  /// already; identical in every algorithm family.
  template <typename T>
  std::vector<T> alltoall(std::span<const T> mine, std::size_t block) {
    obs::Span span(obs::Op::CollAlltoall, comm_, block * sizeof(T), nullptr);
    std::vector<T> out(block * static_cast<std::size_t>(nprocs()));
    for (int j = 0; j < nprocs(); ++j) {
      if (j == index_) continue;
      send(j, kAllToAllTag,
           std::span<const T>(mine.data() + block * static_cast<std::size_t>(j),
                              block));
    }
    std::copy(mine.begin() + static_cast<std::ptrdiff_t>(
                                 block * static_cast<std::size_t>(index_)),
              mine.begin() + static_cast<std::ptrdiff_t>(
                                 block * static_cast<std::size_t>(index_ + 1)),
              out.begin() + static_cast<std::ptrdiff_t>(
                                block * static_cast<std::size_t>(index_)));
    for (int j = 0; j < nprocs(); ++j) {
      if (j == index_) continue;
      recv(j, kAllToAllTag,
           std::span<T>(out.data() + block * static_cast<std::size_t>(j),
                        block));
    }
    return out;
  }

  /// Pairwise full exchange: sends `mine` to `partner_index` and receives
  /// the partner's buffer of equal size (the FFT's butterfly exchange).
  template <typename T>
  void exchange(int partner_index, int tag, std::span<const T> mine,
                std::span<T> theirs) {
    // Deterministic order avoids any dependence on mailbox buffering: lower
    // index sends first.  Mailboxes are unbounded so either order works,
    // but determinism keeps message interleavings reproducible.
    if (index_ < partner_index) {
      send(partner_index, tag, mine);
      recv(partner_index, tag, theirs);
    } else {
      recv(partner_index, tag, theirs);
      send(partner_index, tag, mine);
    }
  }

  /// Count of point-to-point messages this copy has sent (diagnostics).
  std::uint64_t sent_count() const { return sent_count_; }

  // Reserved tags for collectives; user tags must be non-negative.  Shared
  // with spmd/coll.cpp — the two files together own the reserved-tag
  // discipline that keeps collective traffic disjoint from user traffic
  // within one communicator.
  static constexpr int kBcastTag = -1;
  static constexpr int kReduceTag = -2;
  static constexpr int kGatherTag = -3;
  static constexpr int kBarrierUpTag = -4;
  static constexpr int kBarrierDownTag = -5;
  static constexpr int kScanTag = -6;
  static constexpr int kAllToAllTag = -7;
  static constexpr int kBarrierDissemTag = -8;
  static constexpr int kAllreduceTag = -9;
  static constexpr int kAllreduceFoldTag = -10;
  static constexpr int kAllgatherTag = -11;

 private:
  /// Wraps a typed binary operator as the byte-level combine the coll layer
  /// uses.  The operator reference must outlive the collective call (it
  /// does: the combine is only invoked inside it).
  template <typename T>
  static coll::ByteCombine byte_combine(
      const std::function<T(const T&, const T&)>& op) {
    return [&op](std::span<const std::byte> incoming, std::span<std::byte> acc,
                 bool incoming_first) {
      const T* in = reinterpret_cast<const T*>(incoming.data());
      T* a = reinterpret_cast<T*>(acc.data());
      const std::size_t n = acc.size() / sizeof(T);
      if (incoming_first) {
        for (std::size_t k = 0; k < n; ++k) a[k] = op(in[k], a[k]);
      } else {
        for (std::size_t k = 0; k < n; ++k) a[k] = op(a[k], in[k]);
      }
    };
  }

  vp::Machine& machine_;
  std::uint64_t comm_;
  std::vector<int> processors_;
  int index_;
  std::uint64_t sent_count_ = 0;
};

}  // namespace tdp::spmd
