// Execution context for one copy of an SPMD data-parallel program
// (§3.1.4, §3.5).
//
// A distributed call runs one copy of the called program on each processor
// of a group.  Each copy receives an SpmdContext giving it
//   * its index within the group and the processor array (the thesis makes
//     relocatability a requirement: processor numbers must come from the
//     array passed with the call, never be hard-wired);
//   * point-to-point typed send/receive *within the group*, scoped by the
//     call's communicator id so that concurrent distributed calls can never
//     intercept each other's messages (§3.4.1, fig. 3.4);
//   * the collective operations (barrier, broadcast, reduce, allreduce,
//     gather, allgather, exchange) an adapted SPMD library needs (§D).
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "vp/machine.hpp"

namespace tdp::spmd {

class SpmdContext {
 public:
  /// Constructs the context of copy `index` of a call distributed over
  /// `processors` with communicator id `comm`.
  SpmdContext(vp::Machine& machine, std::uint64_t comm,
              std::vector<int> processors, int index);

  int index() const { return index_; }
  int nprocs() const { return static_cast<int>(processors_.size()); }
  int proc() const { return processors_[static_cast<std::size_t>(index_)]; }
  const std::vector<int>& processors() const { return processors_; }
  std::uint64_t comm() const { return comm_; }
  vp::Machine& machine() { return machine_; }

  // --- Point-to-point (group indices, not raw processor numbers). ---------

  void send_bytes(int dst_index, int tag, std::span<const std::byte> bytes);
  std::vector<std::byte> recv_bytes(int src_index, int tag);

  template <typename T>
  void send(int dst_index, int tag, std::span<const T> data) {
    send_bytes(dst_index, tag,
               std::as_bytes(std::span<const T>(data.data(), data.size())));
  }

  template <typename T>
  void send_value(int dst_index, int tag, const T& v) {
    send(dst_index, tag, std::span<const T>(&v, 1));
  }

  template <typename T>
  void recv(int src_index, int tag, std::span<T> out) {
    std::vector<std::byte> bytes = recv_bytes(src_index, tag);
    std::memcpy(out.data(), bytes.data(),
                std::min(bytes.size(), out.size() * sizeof(T)));
  }

  template <typename T>
  T recv_value(int src_index, int tag) {
    T v{};
    recv(src_index, tag, std::span<T>(&v, 1));
    return v;
  }

  // --- Collectives over the group. -----------------------------------------

  /// All copies must arrive before any proceeds.
  void barrier();

  /// Root's buffer is copied to every copy's buffer.
  template <typename T>
  void broadcast(std::span<T> data, int root) {
    if (index_ == root) {
      for (int i = 0; i < nprocs(); ++i) {
        if (i != root) send(i, kBcastTag, std::span<const T>(data));
      }
    } else {
      recv(root, kBcastTag, data);
    }
  }

  /// Element-wise reduction of every copy's buffer into root's buffer.
  template <typename T>
  void reduce(std::span<T> data, int root,
              const std::function<T(const T&, const T&)>& op) {
    if (index_ == root) {
      std::vector<T> incoming(data.size());
      for (int i = 0; i < nprocs(); ++i) {
        if (i == root) continue;
        recv(i, kReduceTag, std::span<T>(incoming));
        for (std::size_t k = 0; k < data.size(); ++k) {
          data[k] = op(data[k], incoming[k]);
        }
      }
    } else {
      send(root, kReduceTag, std::span<const T>(data));
    }
  }

  /// reduce to copy 0 followed by broadcast.
  template <typename T>
  void allreduce(std::span<T> data,
                 const std::function<T(const T&, const T&)>& op) {
    reduce(data, 0, op);
    broadcast(data, 0);
  }

  /// Scalar allreduce convenience.
  template <typename T>
  T allreduce_value(T v, const std::function<T(const T&, const T&)>& op) {
    allreduce(std::span<T>(&v, 1), op);
    return v;
  }

  double allreduce_sum(double v);
  double allreduce_max(double v);
  int allreduce_max_int(int v);

  /// Gathers equal-sized contributions to root, concatenated in index order.
  template <typename T>
  std::vector<T> gather(std::span<const T> mine, int root) {
    if (index_ == root) {
      std::vector<T> out(mine.size() * static_cast<std::size_t>(nprocs()));
      for (int i = 0; i < nprocs(); ++i) {
        std::span<T> slot(out.data() + mine.size() * static_cast<std::size_t>(i),
                          mine.size());
        if (i == root) {
          std::copy(mine.begin(), mine.end(), slot.begin());
        } else {
          recv(i, kGatherTag, slot);
        }
      }
      return out;
    }
    send(root, kGatherTag, mine);
    return {};
  }

  /// gather to copy 0 followed by broadcast of the concatenation.
  template <typename T>
  std::vector<T> allgather(std::span<const T> mine) {
    std::vector<T> all = gather(mine, 0);
    if (index_ != 0) {
      all.resize(mine.size() * static_cast<std::size_t>(nprocs()));
    }
    broadcast(std::span<T>(all), 0);
    return all;
  }

  /// Inclusive prefix reduction in index order: copy i's buffer becomes
  /// op(data_0, ..., data_i) elementwise.  Linear chain.
  template <typename T>
  void scan(std::span<T> data, const std::function<T(const T&, const T&)>& op) {
    if (index_ > 0) {
      std::vector<T> incoming(data.size());
      recv(index_ - 1, kScanTag, std::span<T>(incoming));
      for (std::size_t k = 0; k < data.size(); ++k) {
        data[k] = op(incoming[k], data[k]);
      }
    }
    if (index_ + 1 < nprocs()) {
      send(index_ + 1, kScanTag, std::span<const T>(data));
    }
  }

  /// Full personalised exchange: `mine` holds nprocs() blocks of
  /// `block` elements, block j destined for copy j; the result holds the
  /// blocks received from every copy, in index order.
  template <typename T>
  std::vector<T> alltoall(std::span<const T> mine, std::size_t block) {
    std::vector<T> out(block * static_cast<std::size_t>(nprocs()));
    for (int j = 0; j < nprocs(); ++j) {
      if (j == index_) continue;
      send(j, kAllToAllTag,
           std::span<const T>(mine.data() + block * static_cast<std::size_t>(j),
                              block));
    }
    std::copy(mine.begin() + static_cast<std::ptrdiff_t>(
                                 block * static_cast<std::size_t>(index_)),
              mine.begin() + static_cast<std::ptrdiff_t>(
                                 block * static_cast<std::size_t>(index_ + 1)),
              out.begin() + static_cast<std::ptrdiff_t>(
                                block * static_cast<std::size_t>(index_)));
    for (int j = 0; j < nprocs(); ++j) {
      if (j == index_) continue;
      recv(j, kAllToAllTag,
           std::span<T>(out.data() + block * static_cast<std::size_t>(j),
                        block));
    }
    return out;
  }

  /// Pairwise full exchange: sends `mine` to `partner_index` and receives
  /// the partner's buffer of equal size (the FFT's butterfly exchange).
  template <typename T>
  void exchange(int partner_index, int tag, std::span<const T> mine,
                std::span<T> theirs) {
    // Deterministic order avoids any dependence on mailbox buffering: lower
    // index sends first.  Mailboxes are unbounded so either order works,
    // but determinism keeps message interleavings reproducible.
    if (index_ < partner_index) {
      send(partner_index, tag, mine);
      recv(partner_index, tag, theirs);
    } else {
      recv(partner_index, tag, theirs);
      send(partner_index, tag, mine);
    }
  }

  /// Count of point-to-point messages this copy has sent (diagnostics).
  std::uint64_t sent_count() const { return sent_count_; }

 private:
  // Reserved tags for collectives; user tags should be non-negative.
  static constexpr int kBcastTag = -1;
  static constexpr int kReduceTag = -2;
  static constexpr int kGatherTag = -3;
  static constexpr int kBarrierUpTag = -4;
  static constexpr int kBarrierDownTag = -5;
  static constexpr int kScanTag = -6;
  static constexpr int kAllToAllTag = -7;

  vp::Machine& machine_;
  std::uint64_t comm_;
  std::vector<int> processors_;
  int index_;
  std::uint64_t sent_count_ = 0;
};

}  // namespace tdp::spmd
