// Collective algorithms over an SPMD group (§3.4.1, §D).
//
// The thesis's distributed calls stand or fall on the cost of group
// communication: every adapted SPMD library leans on barrier, broadcast,
// reduce and friends, and a root-sequential implementation makes each of
// them an O(P)-depth serial bottleneck.  This module provides the
// logarithmic-depth algorithms that are the standard baseline for these
// primitives —
//
//   * binomial-tree broadcast and reduce (depth ceil(log2 P); the broadcast
//     forwards one refcounted vp::Payload down the tree, so fanning a
//     buffer out to P-1 peers performs zero payload copies),
//   * recursive-doubling allreduce with the non-power-of-two pre/post fold
//     (ranks past the largest power of two fold into a partner first and
//     receive the finished result last) for short payloads, switching past
//     kAllreduceRdMaxBytes to an index-ordered combine at index 0 followed
//     by the zero-copy tree broadcast — doubling moves P*log2(P) payloads
//     where combine-then-broadcast moves ~2P, so it only pays off when
//     per-message latency, not copy bandwidth, dominates,
//   * a dissemination barrier (ceil(log2 P) rounds, any group size),
//   * Bruck's allgather (ceil(log2 P) rounds, any group size, one local
//     rotation into index order at the end),
//
// — plus the original linear variants, selectable with TDP_COLL=linear (or
// coll::force(Algo::Linear)) for A/B benchmarking.  Gather, scan, alltoall
// and exchange keep their original algorithms in SpmdContext: gather's
// bottleneck is the P-1 blocks that must land at the root either way (the
// linear form receives them straight into their destination slots with no
// staging), scan is a genuine dependence chain, and alltoall/exchange are
// already fully pairwise.
//
// All functions are *collective*: every copy in the group must call the
// same function with compatible arguments, in the same order.  They use
// only the group's reserved negative tags and the call's communicator id,
// so concurrent distributed calls never intercept each other's traffic.
// Combine operators must be associative; operands are ordered so that the
// lower-indexed copy's contribution is always the left argument, so any
// associative (even non-commutative) operator yields the same result on
// every copy — though tree and linear variants may associate differently,
// which matters only for non-exact arithmetic.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "vp/payload.hpp"

namespace tdp::spmd {

class SpmdContext;

namespace coll {

/// Thrown by a collective (via SpmdContext::recv_payload) when the message
/// it received is a poison marker: an upstream copy's receive timed out, and
/// rather than abandoning its forwarding duty — which would make this whole
/// subtree time out blaming the wrong peer — it flushed poison downstream.
/// `origin` is the group index of the copy the *first* timeout was waiting
/// on, i.e. the originally stalled VP, so every copy in the subtree fails
/// fast naming the same culprit.
class Poisoned : public std::runtime_error {
 public:
  Poisoned(std::string what, int origin)
      : std::runtime_error(std::move(what)), origin(origin) {}

  int origin;  ///< group index of the originally stalled copy
};

/// Which algorithm family the collectives dispatch to.
enum class Algo {
  Linear,  ///< the original root-sequential loops (A/B baseline)
  Tree,    ///< logarithmic-depth trees (default)
};

/// The selected algorithm: a programmatic force() override if set, else
/// TDP_COLL from the environment ("linear" or "tree"; unset selects Tree;
/// an unrecognised value earns a one-line stderr warning naming the valid
/// values and selects Tree; parsed once per process).
Algo algorithm();

/// Maps a TDP_COLL-style name to an Algo; `known_out` reports whether the
/// name was one of the valid values ("linear", "tree").  Unknown names map
/// to Tree.  Exposed so tests can cover the parse without re-execing.
Algo algo_from_name(std::string_view name, bool& known_out);

/// Overrides the TDP_COLL selection process-wide (tests and A/B benches).
void force(Algo a);

/// Clears the force() override, returning to the TDP_COLL selection.
void unforce();

/// Type-erased element-wise combine: folds `incoming` into `acc`
/// (equal-sized byte images of the same element type).  `incoming_first`
/// tells the fold which operand is the lower-indexed copy's: true means
/// acc[k] = op(incoming[k], acc[k]), false means acc[k] = op(acc[k],
/// incoming[k]) — the ordering discipline that keeps associative
/// non-commutative operators consistent across copies.
using ByteCombine = std::function<void(std::span<const std::byte> incoming,
                                       std::span<std::byte> acc,
                                       bool incoming_first)>;

/// All copies must arrive before any proceeds.  Tree: dissemination
/// barrier, ceil(log2 P) rounds.  Linear: gather-to-0 then release.
void barrier(SpmdContext& ctx);

/// Root's buffer is copied to every copy's buffer.  Tree: binomial, the
/// payload wrapped once at the root and forwarded by reference.
void broadcast(SpmdContext& ctx, std::span<std::byte> data, int root);

/// Payload-level broadcast: the root passes the buffer to publish, every
/// copy (root included) returns a handle to that same buffer — the fully
/// zero-copy fan-out path (`mine` is ignored on non-roots).
vp::Payload broadcast_payload(SpmdContext& ctx, vp::Payload mine, int root);

/// Element-wise reduction of every copy's buffer into root's buffer;
/// non-root buffers are left unchanged.  Tree: binomial combining tree.
void reduce(SpmdContext& ctx, std::span<std::byte> data, int root,
            const ByteCombine& combine);

/// Payload size above which the tree allreduce abandons recursive doubling
/// for an index-ordered combine at index 0 plus the zero-copy tree
/// broadcast (the classic short/long-message switch: doubling wins on
/// latency, combine-then-broadcast on copy volume).
inline constexpr std::size_t kAllreduceRdMaxBytes = 2048;

/// Element-wise reduction into every copy's buffer.  Tree: recursive
/// doubling with the non-power-of-two pre/post fold up to
/// kAllreduceRdMaxBytes; past that, combine at index 0 + tree broadcast.
void allreduce(SpmdContext& ctx, std::span<std::byte> data,
               const ByteCombine& combine);

/// Equal-sized contributions concatenated in index order on every copy.
/// `all` must hold nprocs() * mine.size() bytes.  Tree: Bruck's algorithm.
void allgather(SpmdContext& ctx, std::span<const std::byte> mine,
               std::span<std::byte> all);

}  // namespace coll
}  // namespace tdp::spmd
