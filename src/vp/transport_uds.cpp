// UdsTransport — Machine::send over Unix-domain stream sockets, one OS
// process per virtual processor.
//
// Topology: the launcher (tools/tdp_launch) gives every rank the same
// rendezvous directory; rank r binds and listens on <dir>/rank-<r>.sock
// at Machine construction.  Connections are sender-initiated and
// unidirectional: the first send from rank a to rank b connects to b's
// socket, writes an 8-byte hello naming a, and keeps the connection for
// the machine's lifetime — a full mesh costs at most P·(P-1) connections
// and idle pairs never connect at all.  Because peers bind at their own
// pace, connect() retries ECONNREFUSED/ENOENT for a bounded window
// (TDP_UDS_CONNECT_MS, default 10 s) before declaring the peer dead.
//
// Send side: Machine::send has already stamped the flow id and run the
// fault plan, so what arrives here is exactly what must cross the wire.
// The per-peer writer serializes under a per-peer mutex: a 56-byte
// little-endian header (wire::encode_header) and the payload bytes go out
// back-to-back, counted in the comm.wire_bytes / comm.wire_msgs ledger.
//
// Receive side: an acceptor thread hands each inbound connection to a
// dedicated reader thread, which reassembles frames and posts them
// through the same LocalDeliver the direct transport uses — the message
// enters the destination Mailbox by the ordinary post path, so selective
// receive, poison fast-fail, deadlines, and flow recovery are oblivious
// to the wire underneath.
//
// Peer death is observable, not fatal: a reader EOF outside shutdown, a
// failed connect, or a write error marks the peer dead with a reason;
// diagnose() renders the roll, and SpmdContext appends it to any
// ReceiveTimeout so "message never came" errors name the dead rank.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/atomic_print.hpp"
#include "util/env.hpp"
#include "vp/transport.hpp"

namespace tdp::vp {

namespace {

/// Upper bound on a single frame's payload: anything larger is a
/// desynchronized stream (or a foreign writer), not a message.
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 31;

obs::ShardedCounter& wire_bytes_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("comm.wire_bytes");
  return c;
}

obs::ShardedCounter& wire_msgs_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("comm.wire_msgs");
  return c;
}

std::string socket_path(const std::string& dir, int rank) {
  return dir + "/rank-" + std::to_string(rank) + ".sock";
}

/// Writes all of `n` bytes; MSG_NOSIGNAL so a vanished peer surfaces as
/// EPIPE instead of killing the process.  Returns false on any error.
bool write_full(int fd, const std::byte* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads exactly `n` bytes; returns false on EOF or error.
bool read_full(int fd, std::byte* data, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

class UdsTransport final : public Transport {
 public:
  UdsTransport(int nprocs, int rank, std::string dir, LocalDeliver deliver)
      : rank_(rank),
        dir_(std::move(dir)),
        deliver_(std::move(deliver)),
        peers_(static_cast<std::size_t>(nprocs)),
        dead_reason_(static_cast<std::size_t>(nprocs)) {
    for (auto& p : peers_) p = std::make_unique<Peer>();
    bind_and_listen();
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~UdsTransport() override { shutdown(); }

  const char* name() const override { return "uds"; }
  bool remote() const override { return true; }

  void deliver(int dst, Message&& m) override {
    if (dst == rank_) {
      deliver_(dst, std::move(m));
      return;
    }
    Peer& peer = *peers_[static_cast<std::size_t>(dst)];
    std::lock_guard<std::mutex> lock(peer.mu);
    if (peer.dead) return;  // partitioned: drop, like a lost wire
    if (peer.fd < 0 && !connect_locked(dst, peer)) return;
    const wire::FrameHeader h = wire::header_for(m, peer.next_seq);
    std::byte header[wire::kHeaderBytes];
    wire::encode_header(h, header);
    if (!write_full(peer.fd, header, wire::kHeaderBytes) ||
        !write_full(peer.fd, m.payload.data(), m.payload.size())) {
      mark_dead_locked(dst, peer,
                       std::string("write failed (") + std::strerror(errno) +
                           "), peer process gone?");
      return;
    }
    ++peer.next_seq;
    wire_msgs_counter().add();
    wire_bytes_counter().add(
        static_cast<std::uint64_t>(wire::kHeaderBytes + m.payload.size()));
  }

  std::string diagnose() const override {
    std::lock_guard<std::mutex> lock(status_mu_);
    std::string out;
    for (std::size_t r = 0; r < peers_.size(); ++r) {
      if (!dead_reason_[r].empty()) {
        if (out.empty()) {
          out = "transport uds (rank " + std::to_string(rank_) + "): ";
        } else {
          out += "; ";
        }
        out += "rank " + std::to_string(r) + " " + dead_reason_[r];
      }
    }
    return out;
  }

  void shutdown() override {
    if (shutting_down_.exchange(true)) return;
    // Wake the acceptor: shutdown() on a listening socket makes a blocked
    // accept() return on Linux; close alone may not.
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
    }
    if (acceptor_.joinable()) acceptor_.join();
    {
      // Wake every reader blocked mid-read, then join.
      std::lock_guard<std::mutex> lock(inbound_mu_);
      for (Inbound& in : inbound_) ::shutdown(in.fd, SHUT_RDWR);
    }
    for (Inbound& in : inbound_) {
      if (in.reader.joinable()) in.reader.join();
      ::close(in.fd);
    }
    for (auto& p : peers_) {
      std::lock_guard<std::mutex> lock(p->mu);
      if (p->fd >= 0) {
        ::close(p->fd);
        p->fd = -1;
      }
    }
    ::unlink(socket_path(dir_, rank_).c_str());
  }

 private:
  struct Peer {
    std::mutex mu;              ///< serializes connect + framed writes
    int fd = -1;
    std::uint64_t next_seq = 0;
    bool dead = false;
  };

  struct Inbound {
    int fd = -1;
    std::thread reader;
  };

  void bind_and_listen() {
    const std::string path = socket_path(dir_, rank_);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("tdp::vp: UDS path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("tdp::vp: socket() failed: " +
                               std::string(std::strerror(errno)));
    }
    ::unlink(path.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("tdp::vp: cannot listen on " + path + ": " +
                               err);
    }
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listen socket shut down (or fatal): stop accepting
      }
      if (shutting_down_.load()) {
        ::close(fd);
        return;
      }
      std::lock_guard<std::mutex> lock(inbound_mu_);
      inbound_.push_back(Inbound{fd, {}});
      Inbound& in = inbound_.back();
      in.reader = std::thread([this, fd] { read_loop(fd); });
    }
  }

  void read_loop(int fd) {
    int from = -1;
    {
      std::byte hello[wire::kHelloBytes];
      if (!read_full(fd, hello, wire::kHelloBytes) ||
          !wire::decode_hello(hello, from)) {
        if (!shutting_down_.load()) {
          util::atomic_print_err("tdp::vp: uds rank " +
                                 std::to_string(rank_) +
                                 ": inbound connection with bad hello");
        }
        return;
      }
    }
    std::uint64_t expect_seq = 0;
    for (;;) {
      std::byte header[wire::kHeaderBytes];
      if (!read_full(fd, header, wire::kHeaderBytes)) {
        // EOF at a frame boundary: an orderly close — normal when ranks
        // finish at different times.  Record it quietly so a later receive
        // timeout can still name the exited rank; only mid-frame
        // truncation and write errors warrant a loud notice.
        if (!shutting_down_.load()) {
          note_dead(from, "closed its connection (exited?)",
                    /*loud=*/false);
        }
        return;
      }
      wire::FrameHeader h;
      if (!wire::decode_header(header, h) ||
          h.payload_bytes > kMaxPayloadBytes) {
        note_dead(from, "sent a malformed frame (desynchronized stream)");
        return;
      }
      if (h.seq != expect_seq) {
        // A reliable stream cannot reorder; a gap here is a framing bug.
        note_dead(from, "frame sequence gap (got " + std::to_string(h.seq) +
                            ", expected " + std::to_string(expect_seq) + ")");
        return;
      }
      ++expect_seq;
      Payload payload;
      if (h.payload_bytes > 0) {
        std::vector<std::byte> buf(
            static_cast<std::size_t>(h.payload_bytes));
        if (!read_full(fd, buf.data(), buf.size())) {
          if (!shutting_down_.load()) {
            note_dead(from, "closed its connection mid-frame");
          }
          return;
        }
        payload = Payload::take(std::move(buf));
      }
      // The existing post path: typed buckets, waiter wakeups, enq_ns
      // stamping, and post-after-close drop semantics all apply.
      deliver_(rank_, wire::to_message(h, std::move(payload)));
    }
  }

  /// Connects to `dst`'s socket, retrying while the peer may still be
  /// binding.  Caller holds peer.mu.
  bool connect_locked(int dst, Peer& peer) {
    const std::string path = socket_path(dir_, dst);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      mark_dead_locked(dst, peer, "socket path too long: " + path);
      return false;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const long long budget_ms =
        util::env_int("TDP_UDS_CONNECT_MS", 10000, 1, 3600000);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(budget_ms);
    for (;;) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd < 0) {
        mark_dead_locked(dst, peer, std::string("socket() failed: ") +
                                        std::strerror(errno));
        return false;
      }
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        std::byte hello[wire::kHelloBytes];
        wire::encode_hello(rank_, hello);
        if (!write_full(fd, hello, wire::kHelloBytes)) {
          ::close(fd);
          mark_dead_locked(dst, peer, "hello write failed");
          return false;
        }
        peer.fd = fd;
        return true;
      }
      const int err = errno;
      ::close(fd);
      const bool peer_not_up_yet = err == ENOENT || err == ECONNREFUSED;
      if (!peer_not_up_yet || shutting_down_.load() ||
          std::chrono::steady_clock::now() >= deadline) {
        mark_dead_locked(
            dst, peer,
            std::string("unreachable (") + std::strerror(err) +
                (peer_not_up_yet ? ", never bound its socket)" : ")"));
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  void mark_dead_locked(int dst, Peer& peer, const std::string& reason) {
    peer.dead = true;
    if (peer.fd >= 0) {
      ::close(peer.fd);
      peer.fd = -1;
    }
    note_dead(dst, reason);
  }

  void note_dead(int r, const std::string& reason, bool loud = true) {
    bool fresh = false;
    {
      std::lock_guard<std::mutex> lock(status_mu_);
      if (r >= 0 && r < static_cast<int>(dead_reason_.size()) &&
          dead_reason_[static_cast<std::size_t>(r)].empty()) {
        dead_reason_[static_cast<std::size_t>(r)] = reason;
        fresh = true;
      }
    }
    if (fresh && loud) {
      util::atomic_print_err("tdp::vp: uds rank " + std::to_string(rank_) +
                             ": peer rank " + std::to_string(r) + " " +
                             reason);
    }
  }

  const int rank_;
  const std::string dir_;
  const LocalDeliver deliver_;
  std::vector<std::unique_ptr<Peer>> peers_;  ///< outbound, indexed by rank

  int listen_fd_ = -1;
  std::thread acceptor_;
  std::mutex inbound_mu_;
  std::vector<Inbound> inbound_;

  mutable std::mutex status_mu_;
  std::vector<std::string> dead_reason_;  ///< per rank; empty = healthy

  std::atomic<bool> shutting_down_{false};
};

}  // namespace

std::unique_ptr<Transport> make_uds_transport(
    int nprocs, int rank, std::string socket_dir,
    Transport::LocalDeliver deliver);

std::unique_ptr<Transport> make_uds_transport(
    int nprocs, int rank, std::string socket_dir,
    Transport::LocalDeliver deliver) {
  return std::make_unique<UdsTransport>(nprocs, rank, std::move(socket_dir),
                                        std::move(deliver));
}

}  // namespace tdp::vp
