#include "vp/machine.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace tdp::vp {

Machine::Machine(int nprocs) {
  if (nprocs <= 0) {
    throw std::invalid_argument("Machine: nprocs must be positive");
  }
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(i));
  }
}

Machine::~Machine() {
  for (auto& mb : mailboxes_) mb->close();
}

Mailbox& Machine::mailbox(int dst) {
  if (!valid_proc(dst)) {
    throw std::out_of_range("Machine::mailbox: bad processor number");
  }
  return *mailboxes_[static_cast<std::size_t>(dst)];
}

void Machine::send(int dst, Message m) {
  const std::uint64_t comm = m.comm;
  const int tag = m.tag;
  mailbox(dst).post(std::move(m));
  messages_sent_.add_at(dst);
  obs::instant(obs::Op::MsgSend, comm, static_cast<std::uint64_t>(dst),
               static_cast<std::uint64_t>(static_cast<unsigned>(tag)));
}

// The canonical placement thread-local lives in the obs layer so tracing
// can attribute events to virtual processors without depending on vp.
int current_proc() { return obs::current_vp(); }

ProcScope::ProcScope(int proc) : saved_(obs::set_current_vp(proc)) {}

ProcScope::~ProcScope() { obs::set_current_vp(saved_); }

}  // namespace tdp::vp
