#include "vp/machine.hpp"

#include <stdexcept>

namespace tdp::vp {

namespace {
thread_local int t_current_proc = -1;
}  // namespace

Machine::Machine(int nprocs) {
  if (nprocs <= 0) {
    throw std::invalid_argument("Machine: nprocs must be positive");
  }
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Machine::~Machine() {
  for (auto& mb : mailboxes_) mb->close();
}

Mailbox& Machine::mailbox(int dst) {
  if (!valid_proc(dst)) {
    throw std::out_of_range("Machine::mailbox: bad processor number");
  }
  return *mailboxes_[static_cast<std::size_t>(dst)];
}

void Machine::send(int dst, Message m) {
  mailbox(dst).post(std::move(m));
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
}

int current_proc() { return t_current_proc; }

ProcScope::ProcScope(int proc) : saved_(t_current_proc) {
  t_current_proc = proc;
}

ProcScope::~ProcScope() { t_current_proc = saved_; }

}  // namespace tdp::vp
