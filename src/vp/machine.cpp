#include "vp/machine.hpp"

#include <stdexcept>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace tdp::vp {

void Machine::count_delivery(int dst) {
  messages_sent_.add_at(dst);
  // The registry twin of messages_sent_: process-global so the telemetry
  // sampler can difference per-destination shards without a Machine
  // reference (the obs layer must not depend on vp).
  static obs::ShardedCounter& vp_messages =
      obs::Registry::instance().counter("vp.messages");
  vp_messages.add_at(dst);
}

Machine::Machine(int nprocs) {
  if (nprocs <= 0) {
    throw std::invalid_argument("Machine: nprocs must be positive");
  }
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(i));
  }
  if (fault::Plan plan = fault::Plan::from_env(); plan.active()) {
    injector_ = std::make_unique<fault::Injector>(std::move(plan), nprocs);
  }
  // The in-process delivery leg both backends share: the direct transport
  // calls it for every message, the socket transport for its own rank's
  // traffic and for every deserialized inbound frame.
  transport_ = make_transport_from_env(
      nprocs, [this](int dst, Message&& m) {
        mailboxes_[static_cast<std::size_t>(dst)]->post(std::move(m));
        count_delivery(dst);
      });
  // The flusher bounds how long a reorder stash may hold a message: each
  // process runs its own injector, so without it the last message a
  // process sends toward a destination would stay stashed forever.
  if (injector_) {
    injector_->start_stash_flusher([this](int dst, Message&& m) {
      transport_->deliver(dst, std::move(m));
    });
  }
  if (obs::enabled()) {
    obs::Watchdog& wd = obs::Watchdog::instance();
    obs::Telemetry& tel = obs::Telemetry::instance();
    watchdog_tokens_.reserve(mailboxes_.size());
    telemetry_tokens_.reserve(mailboxes_.size());
    for (int i = 0; i < nprocs; ++i) {
      Mailbox* mb = mailboxes_[static_cast<std::size_t>(i)].get();
      // describe_wait renders both sides of a stall: the pending queue AND
      // every registered waiter's match tuple (the indexed mailbox can have
      // several selective receivers blocked at once).
      watchdog_tokens_.push_back(wd.add_source(
          i, &mb->wait_state(), [mb] { return mb->describe_wait(); }));
      telemetry_tokens_.push_back(tel.add_vp_source(i, &mb->wait_state()));
    }
    wd.start(obs::Watchdog::env_period_ms());
    obs::telemetry_start_from_env();
  }
}

Machine::~Machine() {
  // Unregister before closing/destroying mailboxes: the watchdog thread
  // holds raw pointers into them and stops when the last source leaves.
  if (!watchdog_tokens_.empty()) {
    obs::Watchdog& wd = obs::Watchdog::instance();
    for (int token : watchdog_tokens_) wd.remove_source(token);
  }
  if (!telemetry_tokens_.empty()) {
    obs::Telemetry& tel = obs::Telemetry::instance();
    for (int token : telemetry_tokens_) tel.remove_vp_source(token);
  }
  // Flush any messages the injector held back for reordering; an unflushed
  // stash would act as an unplanned drop.  Drain through the transport so
  // a remote-bound stash still crosses the wire.
  if (injector_) {
    injector_->drain([this](int dst, Message&& m) {
      transport_->deliver(dst, std::move(m));
    });
  }
  // Stop reader/acceptor threads BEFORE closing mailboxes: a reader that
  // outlived the mailboxes would post into freed memory.
  transport_->shutdown();
  for (auto& mb : mailboxes_) mb->close();
}

void Machine::set_fault_plan(const fault::Plan& plan) {
  injector_ = plan.active()
                  ? std::make_unique<fault::Injector>(plan, nprocs())
                  : nullptr;
  if (injector_) {
    injector_->start_stash_flusher([this](int dst, Message&& m) {
      transport_->deliver(dst, std::move(m));
    });
  }
}

Mailbox& Machine::mailbox(int dst) {
  if (!valid_proc(dst)) {
    throw std::out_of_range("Machine::mailbox: bad processor number");
  }
  return *mailboxes_[static_cast<std::size_t>(dst)];
}

void Machine::send(int dst, Message m) {
  if (!valid_proc(dst)) {
    throw std::out_of_range("Machine::send: bad processor number");
  }
  if (obs::enabled()) {
    // Stamp the trace context and emit the send instant BEFORE posting:
    // the receiver may match the message the moment it is queued, and the
    // flow arrow needs the send timestamp to precede the receive's.
    m.flow = obs::next_flow_id();
    obs::instant_flow(obs::Op::MsgSend, m.flow, m.comm,
                      static_cast<std::uint64_t>(dst),
                      static_cast<std::uint64_t>(static_cast<unsigned>(m.tag)));
  }
  if (injector_) {
    // The sender's identity is the calling thread's placement, NOT m.src:
    // for data-parallel traffic m.src is the group index within the call,
    // not a processor number.  Faults fire at the send boundary, before
    // the message reaches the transport: a drop never touches the wire, a
    // delay holds the sender, a duplicate is framed twice.
    injector_->on_send(current_proc(), dst, std::move(m),
                       [this, dst](Message&& routed) {
                         transport_->deliver(dst, std::move(routed));
                       });
    return;
  }
  transport_->deliver(dst, std::move(m));
}

// The canonical placement thread-local lives in the obs layer so tracing
// can attribute events to virtual processors without depending on vp.
int current_proc() { return obs::current_vp(); }

ProcScope::ProcScope(int proc) : saved_(obs::set_current_vp(proc)) {}

ProcScope::~ProcScope() { obs::set_current_vp(saved_); }

}  // namespace tdp::vp
