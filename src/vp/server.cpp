#include "vp/server.hpp"

namespace tdp::vp {

ServerSystem::ServerSystem(Machine& machine) : machine_(machine) {
  nodes_.reserve(static_cast<std::size_t>(machine.nprocs()));
  for (int p = 0; p < machine.nprocs(); ++p) {
    nodes_.push_back(std::make_unique<Node>());
  }
  for (int p = 0; p < machine.nprocs(); ++p) {
    nodes_[static_cast<std::size_t>(p)]->server =
        std::thread([this, p] { serve(p); });
  }
}

ServerSystem::~ServerSystem() {
  for (auto& node : nodes_) {
    {
      std::lock_guard<std::mutex> lock(node->mutex);
      node->stopping = true;
    }
    node->cv.notify_all();
  }
  for (auto& node : nodes_) {
    if (node->server.joinable()) node->server.join();
    for (std::thread& w : node->workers) {
      if (w.joinable()) w.join();
    }
  }
}

void ServerSystem::add_capability(int proc, const std::string& type,
                                  Capability handler) {
  Node& node = *nodes_.at(static_cast<std::size_t>(proc));
  std::lock_guard<std::mutex> lock(node.mutex);
  node.capabilities[type] = std::move(handler);
}

void ServerSystem::add_capability_all(const std::string& type,
                                      Capability handler) {
  for (int p = 0; p < machine_.nprocs(); ++p) {
    add_capability(p, type, handler);
  }
}

pcn::Def<std::any> ServerSystem::request(int proc, const std::string& type,
                                         std::any parameters, int origin) {
  auto req = std::make_shared<ServerRequest>();
  req->type = type;
  req->parameters = std::move(parameters);
  req->origin = origin >= 0 ? origin : current_proc();
  pcn::Def<std::any> reply = req->reply;

  if (fault::Injector* inj = machine_.faults();
      inj != nullptr && inj->drop_request(proc)) {
    return reply;  // lost in transit: the reply stays undefined
  }

  Node& node = *nodes_.at(static_cast<std::size_t>(proc));
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    if (node.stopping) {
      reply.try_define(std::any{});
      return reply;
    }
    node.queue.push_back(std::move(req));
  }
  // Targeted wakeup: exactly one thread (the node's server loop) waits on
  // this condition variable, so notify_one suffices — notify_all here would
  // be the same broadcast habit the indexed mailbox removed from post().
  node.cv.notify_one();
  return reply;
}

std::any ServerSystem::request_wait(int proc, const std::string& type,
                                    std::any parameters, int origin) {
  return request(proc, type, std::move(parameters), origin).read();
}

bool ServerSystem::has_capability(int proc, const std::string& type) const {
  const Node& node = *nodes_.at(static_cast<std::size_t>(proc));
  std::lock_guard<std::mutex> lock(node.mutex);
  return node.capabilities.count(type) != 0;
}

std::uint64_t ServerSystem::serviced(int proc) const {
  const Node& node = *nodes_.at(static_cast<std::size_t>(proc));
  std::lock_guard<std::mutex> lock(node.mutex);
  return node.serviced;
}

void ServerSystem::serve(int proc) {
  ProcScope scope(proc);
  Node& node = *nodes_[static_cast<std::size_t>(proc)];
  for (;;) {
    std::shared_ptr<ServerRequest> req;
    Capability handler;
    {
      std::unique_lock<std::mutex> lock(node.mutex);
      node.cv.wait(lock, [&] { return node.stopping || !node.queue.empty(); });
      if (node.queue.empty()) return;  // stopping and drained
      req = std::move(node.queue.front());
      node.queue.pop_front();
      ++node.serviced;
      auto it = node.capabilities.find(req->type);
      if (it != node.capabilities.end()) handler = it->second;
      if (handler) {
        // PCN semantics: the server passes the request to the module's
        // server program, which runs as its own process; the server loop
        // stays free to accept further requests (so a handler may issue
        // nested server requests without deadlock).
        node.workers.emplace_back([proc, req, handler] {
          ProcScope worker_scope(proc);
          handler(*req);
          req->reply.try_define(std::any{});  // guard against silent handlers
        });
      }
    }
    if (!handler) {
      req->reply.try_define(std::any{});  // unknown capability
    }
  }
}

}  // namespace tdp::vp
