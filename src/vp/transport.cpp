#include "vp/transport.hpp"

#include <cstring>

#include "util/atomic_print.hpp"
#include "util/env.hpp"

namespace tdp::vp {

namespace wire {

namespace {

void put_u32(std::byte* p, std::uint32_t v) {
  p[0] = static_cast<std::byte>(v & 0xFF);
  p[1] = static_cast<std::byte>((v >> 8) & 0xFF);
  p[2] = static_cast<std::byte>((v >> 16) & 0xFF);
  p[3] = static_cast<std::byte>((v >> 24) & 0xFF);
}

void put_u64(std::byte* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::byte* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::uint32_t zigzag(std::int32_t v) {
  // Two's-complement round trip through u32, explicit about signedness so
  // the layout is identical on every host.
  return static_cast<std::uint32_t>(v);
}

std::int32_t unzigzag(std::uint32_t v) { return static_cast<std::int32_t>(v); }

}  // namespace

// Layout (offsets in bytes, all fields little-endian fixed-width):
//   0  u32 magic "TDPM"
//   4  u32 cls
//   8  u64 comm
//  16  i32 tag
//  20  i32 src
//  24  i32 poison_origin
//  28  u32 reserved (0)
//  32  u64 flow
//  40  u64 seq
//  48  u64 payload_bytes
//  56  payload bytes follow
void encode_header(const FrameHeader& h, std::byte out[kHeaderBytes]) {
  put_u32(out + 0, kFrameMagic);
  put_u32(out + 4, h.cls);
  put_u64(out + 8, h.comm);
  put_u32(out + 16, zigzag(h.tag));
  put_u32(out + 20, zigzag(h.src));
  put_u32(out + 24, zigzag(h.poison_origin));
  put_u32(out + 28, 0);
  put_u64(out + 32, h.flow);
  put_u64(out + 40, h.seq);
  put_u64(out + 48, h.payload_bytes);
}

bool decode_header(const std::byte in[kHeaderBytes], FrameHeader& h) {
  if (get_u32(in + 0) != kFrameMagic) return false;
  h.cls = get_u32(in + 4);
  h.comm = get_u64(in + 8);
  h.tag = unzigzag(get_u32(in + 16));
  h.src = unzigzag(get_u32(in + 20));
  h.poison_origin = unzigzag(get_u32(in + 24));
  h.flow = get_u64(in + 32);
  h.seq = get_u64(in + 40);
  h.payload_bytes = get_u64(in + 48);
  return true;
}

FrameHeader header_for(const Message& m, std::uint64_t seq) {
  FrameHeader h;
  h.cls = static_cast<std::uint32_t>(m.cls);
  h.comm = m.comm;
  h.tag = m.tag;
  h.src = m.src;
  h.poison_origin = m.poison_origin;
  h.flow = m.flow;
  h.seq = seq;
  h.payload_bytes = m.payload.size();
  return h;
}

Message to_message(const FrameHeader& h, Payload payload) {
  Message m;
  m.cls = static_cast<MessageClass>(h.cls);
  m.comm = h.comm;
  m.tag = h.tag;
  m.src = h.src;
  m.poison_origin = h.poison_origin;
  m.flow = h.flow;
  m.payload = std::move(payload);
  return m;
}

void encode_hello(int rank, std::byte out[kHelloBytes]) {
  put_u32(out + 0, kHelloMagic);
  put_u32(out + 4, zigzag(rank));
}

bool decode_hello(const std::byte in[kHelloBytes], int& rank_out) {
  if (get_u32(in + 0) != kHelloMagic) return false;
  rank_out = unzigzag(get_u32(in + 4));
  return true;
}

}  // namespace wire

namespace {

/// The original in-process path: deliver == direct post into the
/// destination mailbox.  One std::function indirection per message, which
/// the mailbox ablation shows is noise next to the post itself.
class DirectTransport final : public Transport {
 public:
  explicit DirectTransport(LocalDeliver deliver)
      : deliver_(std::move(deliver)) {}

  const char* name() const override { return "direct"; }

  void deliver(int dst, Message&& m) override {
    deliver_(dst, std::move(m));
  }

 private:
  LocalDeliver deliver_;
};

}  // namespace

std::unique_ptr<Transport> make_direct_transport(Transport::LocalDeliver d) {
  return std::make_unique<DirectTransport>(std::move(d));
}

// Implemented in transport_uds.cpp.
std::unique_ptr<Transport> make_uds_transport(
    int nprocs, int rank, std::string socket_dir,
    Transport::LocalDeliver deliver);

std::unique_ptr<Transport> make_transport_from_env(
    int nprocs, Transport::LocalDeliver deliver) {
  const char* kind = std::getenv("TDP_TRANSPORT");
  if (kind == nullptr || kind[0] == '\0' ||
      std::strcmp(kind, "direct") == 0) {
    return make_direct_transport(std::move(deliver));
  }
  if (std::strcmp(kind, "uds") != 0) {
    util::atomic_print_err(
        std::string("tdp::vp: unknown TDP_TRANSPORT \"") + kind +
        "\" (expected \"direct\" or \"uds\"); using direct");
    return make_direct_transport(std::move(deliver));
  }
  const int rank = util::env_int32("TDP_RANK", -1, 0, 1 << 20);
  const int size = util::env_int32("TDP_SIZE", -1, 1, 1 << 20);
  const char* dir = std::getenv("TDP_UDS_DIR");
  if (rank < 0 || size < 1 || dir == nullptr || dir[0] == '\0') {
    util::atomic_print_err(
        "tdp::vp: TDP_TRANSPORT=uds needs TDP_RANK, TDP_SIZE and "
        "TDP_UDS_DIR (tools/tdp_launch sets all three); using the direct "
        "in-process transport");
    return make_direct_transport(std::move(deliver));
  }
  if (rank >= size) {
    util::atomic_print_err("tdp::vp: TDP_RANK=" + std::to_string(rank) +
                           " is outside TDP_SIZE=" + std::to_string(size) +
                           "; using the direct in-process transport");
    return make_direct_transport(std::move(deliver));
  }
  if (size != nprocs) {
    // A Machine whose processor count disagrees with the launched world
    // cannot be one rank of it — most commonly a library-internal helper
    // Machine inside a launched process.  Degrade to in-process delivery.
    util::atomic_print_err(
        "tdp::vp: Machine(" + std::to_string(nprocs) + ") != TDP_SIZE=" +
        std::to_string(size) +
        "; this machine uses the direct in-process transport");
    return make_direct_transport(std::move(deliver));
  }
  return make_uds_transport(nprocs, rank, dir, std::move(deliver));
}

}  // namespace tdp::vp
