// Typed point-to-point messages with selective receive.
//
// The thesis (§3.4.1, §5.3) requires that, when both the task-parallel
// notation and called data-parallel programs communicate via point-to-point
// message passing, messages be *typed* and receives be *selective*, with the
// task-parallel traffic and each data-parallel program's traffic using
// disjoint type sets.  Our simulated multicomputer enforces exactly that:
//
//  * every message carries a `MessageClass` (task-parallel vs data-parallel
//    traffic, the "PCN type" vs "data-parallel-program type" of §5.3),
//  * data-parallel messages additionally carry the communicator id of the
//    distributed call they belong to, so concurrent distributed calls can
//    never intercept each other's messages (fig. 3.4), and
//  * receive() is selective: it delivers the first queued message matching
//    a caller-supplied predicate and leaves non-matching traffic queued.
//
// Selective receive is *indexed*: messages hash into per-(class, comm, tag)
// buckets (FIFO within a bucket via a global arrival sequence number), each
// blocked receiver registers a waiter record with a private condition-variable
// slot, and post() wakes only waiters whose match tuple admits the new
// message.  A waiter keeps a scan cursor so it never re-examines messages it
// already rejected.  Opaque-predicate receives fall back to a legacy
// any-message lane that scans the whole queue in arrival order; setting
// TDP_MAILBOX=linear routes every receive through that lane with
// broadcast wakeups — the pre-index behaviour, kept as the A/B baseline.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/watchdog.hpp"
#include "sched/sched.hpp"
#include "vp/payload.hpp"

namespace tdp::vp {

/// The disjoint message "type" classes of §5.3.
enum class MessageClass : int {
  TaskParallel = 0,  ///< traffic of the task-parallel runtime ("PCN type")
  DataParallel = 1,  ///< traffic of called SPMD programs
};

/// A typed message.  `comm` scopes data-parallel traffic to one distributed
/// call; `tag` and `src` support MPI-style selective receive inside a call.
struct Message {
  MessageClass cls = MessageClass::TaskParallel;
  std::uint64_t comm = 0;  ///< communicator (distributed-call) id; 0 = none
  int tag = 0;             ///< user message type within the class
  int src = -1;            ///< sending processor number
  /// Poison marker for collective failure propagation: when >= 0, this
  /// message carries no data — it tells the receiver that the copy with
  /// this group index stalled upstream, so the receiver should fail fast
  /// instead of timing out itself (spmd::coll::Poisoned).
  int poison_origin = -1;
  /// Causal trace context, stamped by Machine::send when observability is
  /// on (obs::next_flow_id: sender VP shard + monotonic per-VP sequence)
  /// and recovered by Mailbox::receive — the id that links the send instant
  /// to the receive span as a Chrome flow arrow.  0 when tracing is off or
  /// the message bypassed Machine::send.
  std::uint64_t flow = 0;
  /// obs::now_ns() at enqueue, stamped by Mailbox::post when observability
  /// is on; 0 otherwise.  Delivery differences it into the owning call's
  /// queue-wait ledger (obs::CallTable) — the "how long did this message
  /// sit before anyone wanted it" phase of per-call attribution.
  std::uint64_t enq_ns = 0;
  /// The message body: an immutable refcounted buffer (see vp/payload.hpp).
  /// Senders that fan one buffer out to many destinations share it; the
  /// substrate never copies it again once wrapped.
  Payload payload;
};

/// Thrown by receive() when the mailbox is closed while a receiver waits
/// (machine teardown); pcn::ProcessGroup treats it as a clean shutdown
/// signal, so a process blocked in receive when its machine is torn down
/// exits quietly instead of crashing through std::terminate.
class MailboxClosed : public std::runtime_error {
 public:
  MailboxClosed() : std::runtime_error("tdp::vp::Mailbox closed") {}
};

/// Thrown by receive_for() when no matching message arrives before the
/// deadline.  Carries exactly what the receiver was awaiting — the (class,
/// comm, tag, src) tuple of a selective receive, or has_detail = false for
/// an opaque predicate — plus a snapshot of the pending queue, so a timeout
/// reads like a watchdog stall report: what was wanted AND what was
/// available but did not match.
class ReceiveTimeout : public std::runtime_error {
 public:
  ReceiveTimeout(std::string what, int owner, bool has_detail,
                 MessageClass cls, std::uint64_t comm, int tag, int src)
      : std::runtime_error(std::move(what)),
        owner(owner),
        has_detail(has_detail),
        cls(cls),
        comm(comm),
        tag(tag),
        src(src) {}

  int owner;        ///< processor whose mailbox timed out (-1 free-standing)
  bool has_detail;  ///< false when the wait used an opaque predicate
  MessageClass cls;
  std::uint64_t comm;
  int tag;
  int src;
};

/// Receive-path implementation family: Indexed is the per-bucket targeted-
/// wakeup design; Linear is the pre-index one-queue/broadcast-wakeup path,
/// kept for A/B measurement (bench/ablation_mailbox).
enum class MailboxMode : int {
  Indexed = 0,
  Linear = 1,
};

/// The mode new mailboxes snapshot at construction: a force_mailbox_mode()
/// override if one is in effect, else TDP_MAILBOX from the environment
/// ("indexed"/"linear", cached on first read; unknown values warn and fall
/// back to indexed).
MailboxMode mailbox_mode();

/// Programmatic override of TDP_MAILBOX (benches, tests).  Affects only
/// mailboxes constructed afterwards — a live mailbox never switches mode.
void force_mailbox_mode(MailboxMode m);

/// Removes the override; mailbox_mode() reads the environment again.
void unforce_mailbox_mode();

/// One processor's incoming message queue.  Many senders, selective
/// receivers.  All operations are thread-safe.
class Mailbox {
 public:
  using Predicate = std::function<bool(const Message&)>;

  /// `owner` is the processor number this mailbox belongs to (-1 when the
  /// mailbox is free-standing, e.g. in tests); used only to attribute
  /// observability events to the owning virtual processor.
  explicit Mailbox(int owner = -1)
      : owner_(owner), mode_(mailbox_mode()) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Closes the mailbox and waits for every blocked receiver to leave
  /// the receive path before the queue and waiter lists are destroyed —
  /// without this drain, a receiver woken by close() could still touch the
  /// mailbox while the owning Machine frees it.
  ~Mailbox();

  /// Enqueues a message and wakes waiting receivers whose match tuple
  /// admits it (plus every opaque-predicate waiter, whose match is
  /// unknowable).  Posting into a closed mailbox drops the message (the
  /// send raced machine teardown), bumps mailbox.post_after_close, and
  /// emits a trace instant.
  void post(Message m);

  /// Blocks until a queued message satisfies `match`, removes and returns
  /// it.  Messages that do not match stay queued in arrival order.  Opaque
  /// predicates always use the legacy scan lane: every post must wake them
  /// because no index can prove a message uninteresting to them.
  Message receive(const Predicate& match);

  /// Convenience selective receive on (class, comm, tag, src); a negative
  /// src matches any sender.  Unlike the predicate form, this one is served
  /// from the (class, comm, tag) bucket index with targeted wakeups, and
  /// can tell the stall watchdog exactly what the owner is waiting for.
  Message receive(MessageClass cls, std::uint64_t comm, int tag, int src);

  /// Deadline-aware receive: like receive(match), but throws ReceiveTimeout
  /// if no matching message arrives within `timeout_ms` milliseconds.
  /// `timeout_ms` == 0 means wait forever (identical to receive).
  Message receive_for(const Predicate& match, std::uint64_t timeout_ms);

  /// Deadline-aware selective receive on (class, comm, tag, src).  On
  /// timeout the thrown ReceiveTimeout names the awaited tuple and carries
  /// a pending-queue snapshot in its what() string.
  Message receive_for(MessageClass cls, std::uint64_t comm, int tag, int src,
                      std::uint64_t timeout_ms);

  /// Number of queued (undelivered) messages; for tests and diagnostics.
  std::size_t pending() const;

  /// One-line rendering of the queued messages ("3 pending: [cls=data
  /// comm=7 tag=1 src=0 flow=... 16B] ..."), capped at a few entries; the
  /// stall watchdog's "what was available but did not match" report.  The
  /// messages walk the buckets in arrival order via the global sequence
  /// number, so the rendering is identical across mailbox modes.  The
  /// flow id lets a stall report be cross-referenced with the exported
  /// trace's send→receive arrows.
  std::string describe_pending() const;

  /// describe_pending() plus the registered waiter records ("2 waiting:
  /// (cls=data, comm=7, tag=1, src=any) (opaque)"): both sides of a stall —
  /// what is queued AND what every blocked receiver wants.  The watchdog
  /// registers this as its describe callback.
  std::string describe_wait() const;

  /// The watchdog-visible state of this mailbox (progress counter, blocked
  /// owner, queue depth); vp::Machine registers it with obs::Watchdog.
  obs::VpWaitState& wait_state() { return wait_state_; }

  /// Wakes all waiting receivers with MailboxClosed; used at teardown.
  void close();

  /// The receive-path family this mailbox snapshotted at construction.
  MailboxMode mode() const { return mode_; }

 private:
  /// What a blocked selective receive is waiting for, published to the
  /// watchdog; nullptr for opaque predicates.
  struct WaitDetail {
    MessageClass cls;
    std::uint64_t comm;
    int tag;
    int src;
  };

  /// Bucket key: the indexable part of the match tuple.  src is filtered
  /// inside the bucket (it may be a wildcard), everything else is exact.
  struct BucketKey {
    MessageClass cls;
    std::uint64_t comm;
    int tag;
    bool operator==(const BucketKey& o) const {
      return cls == o.cls && comm == o.comm && tag == o.tag;
    }
  };
  struct BucketKeyHash {
    std::size_t operator()(const BucketKey& k) const {
      // splitmix64-style scramble of the three fields; buckets are few and
      // short-lived, so quality matters more than speed here.
      std::uint64_t x = k.comm + 0x9e3779b97f4a7c15ULL +
                        (static_cast<std::uint64_t>(k.tag) << 32) +
                        static_cast<std::uint64_t>(k.cls);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

  /// One blocked receiver: its match tuple (or "opaque"), a private condvar
  /// slot so post() can wake exactly this receiver, and a scan cursor (the
  /// highest arrival seq it has examined and rejected) so a woken waiter
  /// only looks at messages it has never seen.  Lives on the receiver's
  /// stack (fiber or thread); registered/deregistered under mutex_.  When
  /// the receiver is a scheduler fiber (TDP_SCHED=steal), `task` holds its
  /// handle while suspended and a wakeup is sched::ready instead of a
  /// condvar notify — the waiter record becomes a wakeup edge.
  struct Waiter {
    bool has_tuple = false;
    MessageClass cls = MessageClass::TaskParallel;
    std::uint64_t comm = 0;
    int tag = 0;
    int src = -1;
    std::uint64_t cursor = 0;
    std::condition_variable cv;
    sched::TaskRef task = nullptr;
    bool notified = false;
    bool registered = false;
  };

  struct Bucket {
    std::deque<std::uint64_t> seqs;  ///< arrival seqs, ascending
    std::vector<Waiter*> waiters;    ///< registration order
  };

  using BucketMap = std::unordered_map<BucketKey, Bucket, BucketKeyHash>;

  Message receive_indexed(const WaitDetail& detail, std::uint64_t timeout_ms);
  Message receive_scan(const Predicate& match, const WaitDetail* detail,
                       std::uint64_t timeout_ms);
  /// Removes `seq` (holding message `m`) from its bucket and the arrival
  /// map; caller holds mutex_ and has already located the message.
  void unlink_from_bucket_locked(const Message& m, std::uint64_t seq);
  void maybe_gc_bucket_locked(BucketMap::iterator it);
  void deregister_locked(Waiter& w);
  /// Marks `w` notified and delivers the wakeup on whichever lane the
  /// waiter sleeps: sched::ready for a suspended fiber, cv.notify_one for
  /// a blocked thread.  Caller holds mutex_ (the lifetime rule ready()
  /// requires — the fiber parked with this same mutex).
  void wake_waiter_locked(Waiter& w);
  /// The cv.wait/park dispatch shared by both receive lanes: suspends the
  /// calling fiber (steal lane) or blocks the calling thread until
  /// notified or `deadline`; sets `timed_out` when the deadline passed.
  void wait_waiter_locked(std::unique_lock<std::mutex>& lock, Waiter& w,
                          std::uint64_t timeout_ms,
                          std::chrono::steady_clock::time_point deadline,
                          bool& timed_out);
  void wake_all_locked();
  /// Publishes the delivery to the wait state and the receive span; caller
  /// holds mutex_.
  void note_delivery_locked(const Message& out, bool obs_on);
  /// Publishes "about to block" state: wait tuple, blocked-since, miss
  /// instant; caller holds mutex_.
  void note_block_locked(const WaitDetail* detail, bool obs_on);
  /// Closes the current block interval, if any: folds its duration into
  /// wait_state_.blocked_ns_total and clears blocked_since_ns.  Every exit
  /// from a blocked receive (delivery, close, timeout) funnels through
  /// here so the telemetry sampler's run-fraction accounting never leaks a
  /// block.  Caller holds mutex_.
  void note_unblock_locked();
  std::string describe_pending_locked() const;  // caller holds mutex_
  [[noreturn]] void throw_timeout(const WaitDetail* detail,
                                  std::uint64_t timeout_ms);

  const int owner_;
  const MailboxMode mode_;
  mutable std::mutex mutex_;
  std::condition_variable drain_cv_;  ///< ~Mailbox waits for waiters_ == 0
  /// All undelivered messages keyed by arrival sequence number — the
  /// canonical arrival-order view (describe_pending, the opaque scan lane).
  std::map<std::uint64_t, Message> queue_;
  /// Per-(class, comm, tag) index into queue_; seqs mirror membership.
  BucketMap buckets_;
  std::vector<Waiter*> scan_waiters_;  ///< opaque / linear-mode receivers
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
  int waiters_ = 0;  ///< receivers inside a receive path; drained by ~Mailbox
  // Last: cache-line aligned and only touched on the obs-enabled path, so
  // it cannot push the hot fields above onto separate lines.
  obs::VpWaitState wait_state_;
};

}  // namespace tdp::vp
