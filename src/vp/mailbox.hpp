// Typed point-to-point messages with selective receive.
//
// The thesis (§3.4.1, §5.3) requires that, when both the task-parallel
// notation and called data-parallel programs communicate via point-to-point
// message passing, messages be *typed* and receives be *selective*, with the
// task-parallel traffic and each data-parallel program's traffic using
// disjoint type sets.  Our simulated multicomputer enforces exactly that:
//
//  * every message carries a `MessageClass` (task-parallel vs data-parallel
//    traffic, the "PCN type" vs "data-parallel-program type" of §5.3),
//  * data-parallel messages additionally carry the communicator id of the
//    distributed call they belong to, so concurrent distributed calls can
//    never intercept each other's messages (fig. 3.4), and
//  * receive() is selective: it delivers the first queued message matching
//    a caller-supplied predicate and leaves non-matching traffic queued.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/watchdog.hpp"
#include "vp/payload.hpp"

namespace tdp::vp {

/// The disjoint message "type" classes of §5.3.
enum class MessageClass : int {
  TaskParallel = 0,  ///< traffic of the task-parallel runtime ("PCN type")
  DataParallel = 1,  ///< traffic of called SPMD programs
};

/// A typed message.  `comm` scopes data-parallel traffic to one distributed
/// call; `tag` and `src` support MPI-style selective receive inside a call.
struct Message {
  MessageClass cls = MessageClass::TaskParallel;
  std::uint64_t comm = 0;  ///< communicator (distributed-call) id; 0 = none
  int tag = 0;             ///< user message type within the class
  int src = -1;            ///< sending processor number
  /// Causal trace context, stamped by Machine::send when observability is
  /// on (obs::next_flow_id: sender VP shard + monotonic per-VP sequence)
  /// and recovered by Mailbox::receive — the id that links the send instant
  /// to the receive span as a Chrome flow arrow.  0 when tracing is off or
  /// the message bypassed Machine::send.
  std::uint64_t flow = 0;
  /// The message body: an immutable refcounted buffer (see vp/payload.hpp).
  /// Senders that fan one buffer out to many destinations share it; the
  /// substrate never copies it again once wrapped.
  Payload payload;
};

/// Thrown by receive() when the mailbox is closed while a receiver waits
/// (machine teardown); pcn::ProcessGroup treats it as a clean shutdown
/// signal, so a process blocked in receive when its machine is torn down
/// exits quietly instead of crashing through std::terminate.
class MailboxClosed : public std::runtime_error {
 public:
  MailboxClosed() : std::runtime_error("tdp::vp::Mailbox closed") {}
};

/// Thrown by receive_for() when no matching message arrives before the
/// deadline.  Carries exactly what the receiver was awaiting — the (class,
/// comm, tag, src) tuple of a selective receive, or has_detail = false for
/// an opaque predicate — plus a snapshot of the pending queue, so a timeout
/// reads like a watchdog stall report: what was wanted AND what was
/// available but did not match.
class ReceiveTimeout : public std::runtime_error {
 public:
  ReceiveTimeout(std::string what, int owner, bool has_detail,
                 MessageClass cls, std::uint64_t comm, int tag, int src)
      : std::runtime_error(std::move(what)),
        owner(owner),
        has_detail(has_detail),
        cls(cls),
        comm(comm),
        tag(tag),
        src(src) {}

  int owner;        ///< processor whose mailbox timed out (-1 free-standing)
  bool has_detail;  ///< false when the wait used an opaque predicate
  MessageClass cls;
  std::uint64_t comm;
  int tag;
  int src;
};

/// One processor's incoming message queue.  Many senders, selective
/// receivers.  All operations are thread-safe.
class Mailbox {
 public:
  using Predicate = std::function<bool(const Message&)>;

  /// `owner` is the processor number this mailbox belongs to (-1 when the
  /// mailbox is free-standing, e.g. in tests); used only to attribute
  /// observability events to the owning virtual processor.
  explicit Mailbox(int owner = -1) : owner_(owner) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Closes the mailbox and waits for every blocked receiver to leave
  /// receive_impl before the queue and condition variable are destroyed —
  /// without this drain, a receiver woken by close() could still touch the
  /// mailbox while the owning Machine frees it.
  ~Mailbox();

  /// Enqueues a message and wakes any waiting receivers.
  void post(Message m);

  /// Blocks until a queued message satisfies `match`, removes and returns
  /// it.  Messages that do not match stay queued in arrival order.
  Message receive(const Predicate& match);

  /// Convenience selective receive on (class, comm, tag, src); a negative
  /// src matches any sender.  Unlike the predicate form, this one can tell
  /// the stall watchdog exactly what the owner is waiting for.
  Message receive(MessageClass cls, std::uint64_t comm, int tag, int src);

  /// Deadline-aware receive: like receive(match), but throws ReceiveTimeout
  /// if no matching message arrives within `timeout_ms` milliseconds.
  /// `timeout_ms` == 0 means wait forever (identical to receive).
  Message receive_for(const Predicate& match, std::uint64_t timeout_ms);

  /// Deadline-aware selective receive on (class, comm, tag, src).  On
  /// timeout the thrown ReceiveTimeout names the awaited tuple and carries
  /// a pending-queue snapshot in its what() string.
  Message receive_for(MessageClass cls, std::uint64_t comm, int tag, int src,
                      std::uint64_t timeout_ms);

  /// Number of queued (undelivered) messages; for tests and diagnostics.
  std::size_t pending() const;

  /// One-line rendering of the queued messages ("3 pending: [cls=data
  /// comm=7 tag=1 src=0 flow=... 16B] ..."), capped at a few entries; the
  /// stall watchdog's "what was available but did not match" report.  The
  /// flow id lets a stall report be cross-referenced with the exported
  /// trace's send→receive arrows.
  std::string describe_pending() const;

  /// The watchdog-visible state of this mailbox (progress counter, blocked
  /// owner, queue depth); vp::Machine registers it with obs::Watchdog.
  obs::VpWaitState& wait_state() { return wait_state_; }

  /// Wakes all waiting receivers with MailboxClosed; used at teardown.
  void close();

 private:
  /// What a blocked selective receive is waiting for, published to the
  /// watchdog; nullptr for opaque predicates.
  struct WaitDetail {
    MessageClass cls;
    std::uint64_t comm;
    int tag;
    int src;
  };

  Message receive_impl(const Predicate& match, const WaitDetail* detail,
                       std::uint64_t timeout_ms);
  std::string describe_pending_locked() const;  // caller holds mutex_
  [[noreturn]] void throw_timeout(const WaitDetail* detail,
                                  std::uint64_t timeout_ms);

  const int owner_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
  int waiters_ = 0;  ///< receivers inside receive_impl; drained by ~Mailbox
  // Last: cache-line aligned and only touched on the obs-enabled path, so
  // it cannot push the hot fields above onto separate lines.
  obs::VpWaitState wait_state_;
};

}  // namespace tdp::vp
