// Typed point-to-point messages with selective receive.
//
// The thesis (§3.4.1, §5.3) requires that, when both the task-parallel
// notation and called data-parallel programs communicate via point-to-point
// message passing, messages be *typed* and receives be *selective*, with the
// task-parallel traffic and each data-parallel program's traffic using
// disjoint type sets.  Our simulated multicomputer enforces exactly that:
//
//  * every message carries a `MessageClass` (task-parallel vs data-parallel
//    traffic, the "PCN type" vs "data-parallel-program type" of §5.3),
//  * data-parallel messages additionally carry the communicator id of the
//    distributed call they belong to, so concurrent distributed calls can
//    never intercept each other's messages (fig. 3.4), and
//  * receive() is selective: it delivers the first queued message matching
//    a caller-supplied predicate and leaves non-matching traffic queued.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/watchdog.hpp"
#include "vp/payload.hpp"

namespace tdp::vp {

/// The disjoint message "type" classes of §5.3.
enum class MessageClass : int {
  TaskParallel = 0,  ///< traffic of the task-parallel runtime ("PCN type")
  DataParallel = 1,  ///< traffic of called SPMD programs
};

/// A typed message.  `comm` scopes data-parallel traffic to one distributed
/// call; `tag` and `src` support MPI-style selective receive inside a call.
struct Message {
  MessageClass cls = MessageClass::TaskParallel;
  std::uint64_t comm = 0;  ///< communicator (distributed-call) id; 0 = none
  int tag = 0;             ///< user message type within the class
  int src = -1;            ///< sending processor number
  /// Causal trace context, stamped by Machine::send when observability is
  /// on (obs::next_flow_id: sender VP shard + monotonic per-VP sequence)
  /// and recovered by Mailbox::receive — the id that links the send instant
  /// to the receive span as a Chrome flow arrow.  0 when tracing is off or
  /// the message bypassed Machine::send.
  std::uint64_t flow = 0;
  /// The message body: an immutable refcounted buffer (see vp/payload.hpp).
  /// Senders that fan one buffer out to many destinations share it; the
  /// substrate never copies it again once wrapped.
  Payload payload;
};

/// Thrown by receive() when the mailbox is closed while a receiver waits
/// (machine teardown); well-formed programs never see this.
class MailboxClosed : public std::runtime_error {
 public:
  MailboxClosed() : std::runtime_error("tdp::vp::Mailbox closed") {}
};

/// One processor's incoming message queue.  Many senders, selective
/// receivers.  All operations are thread-safe.
class Mailbox {
 public:
  using Predicate = std::function<bool(const Message&)>;

  /// `owner` is the processor number this mailbox belongs to (-1 when the
  /// mailbox is free-standing, e.g. in tests); used only to attribute
  /// observability events to the owning virtual processor.
  explicit Mailbox(int owner = -1) : owner_(owner) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message and wakes any waiting receivers.
  void post(Message m);

  /// Blocks until a queued message satisfies `match`, removes and returns
  /// it.  Messages that do not match stay queued in arrival order.
  Message receive(const Predicate& match);

  /// Convenience selective receive on (class, comm, tag, src); a negative
  /// src matches any sender.  Unlike the predicate form, this one can tell
  /// the stall watchdog exactly what the owner is waiting for.
  Message receive(MessageClass cls, std::uint64_t comm, int tag, int src);

  /// Number of queued (undelivered) messages; for tests and diagnostics.
  std::size_t pending() const;

  /// One-line rendering of the queued messages ("3 pending: [cls=data
  /// comm=7 tag=1 src=0 flow=... 16B] ..."), capped at a few entries; the
  /// stall watchdog's "what was available but did not match" report.  The
  /// flow id lets a stall report be cross-referenced with the exported
  /// trace's send→receive arrows.
  std::string describe_pending() const;

  /// The watchdog-visible state of this mailbox (progress counter, blocked
  /// owner, queue depth); vp::Machine registers it with obs::Watchdog.
  obs::VpWaitState& wait_state() { return wait_state_; }

  /// Wakes all waiting receivers with MailboxClosed; used at teardown.
  void close();

 private:
  /// What a blocked selective receive is waiting for, published to the
  /// watchdog; nullptr for opaque predicates.
  struct WaitDetail {
    MessageClass cls;
    std::uint64_t comm;
    int tag;
    int src;
  };

  Message receive_impl(const Predicate& match, const WaitDetail* detail);

  const int owner_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
  // Last: cache-line aligned and only touched on the obs-enabled path, so
  // it cannot push the hot fields above onto separate lines.
  obs::VpWaitState wait_state_;
};

}  // namespace tdp::vp
