// The simulated multicomputer: a fixed set of virtual processors.
//
// The thesis maps processes and data to *virtual processors* — persistent
// entities with distinct address spaces, identified by a processor number
// (Preface, "Processes, processors, and virtual processors").  Machine
// models that substrate on one host:
//
//  * `nprocs()` virtual processors, numbered 0..nprocs()-1;
//  * each with its own Mailbox (distinct address spaces communicate only by
//    typed messages);
//  * a per-process "current processor" annotation (the `@p` placement of
//    PCN), maintained as a thread-local so library code can tell on which
//    virtual processor the calling process runs;
//  * a monotonically-increasing communicator-id source used to give every
//    distributed call a disjoint message-type set (§3.4.1).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/inject.hpp"
#include "obs/metrics.hpp"
#include "vp/mailbox.hpp"
#include "vp/transport.hpp"

namespace tdp::vp {

class Machine {
 public:
  /// Creates a machine with `nprocs` virtual processors.  When
  /// observability is enabled, every mailbox is registered with the stall
  /// watchdog, and the watchdog thread starts if TDP_OBS_WATCHDOG_MS is
  /// set (see obs/watchdog.hpp).
  explicit Machine(int nprocs);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int nprocs() const { return static_cast<int>(mailboxes_.size()); }

  /// True when p is a valid processor number of this machine.
  bool valid_proc(int p) const { return p >= 0 && p < nprocs(); }

  /// The incoming mailbox of processor `dst`.
  Mailbox& mailbox(int dst);

  /// Sends `m` to processor `dst`; `m.src` must already identify the sender.
  /// When observability is enabled, stamps the causal trace context
  /// (obs::next_flow_id) into the envelope so the exported trace links this
  /// send to its eventual receive.  When a fault plan is active the message
  /// passes through the injector, which may drop, delay, duplicate, or
  /// reorder it (every injected fault is traced as a fault.* event).
  void send(int dst, Message m);

  /// The delivery backend under send(): the in-process direct post by
  /// default, or the multi-process socket transport when TDP_TRANSPORT=uds
  /// (see vp/transport.hpp).
  Transport& transport() { return *transport_; }

  /// True when some processors of this machine live in other OS processes
  /// (i.e. the transport is remote).
  bool transport_remote() const { return transport_->remote(); }

  /// The transport's peer-health note, empty when healthy.  Receive
  /// timeouts append it so a deadline caused by a dead peer process names
  /// the dead rank.
  std::string transport_diagnostic() const { return transport_->diagnose(); }

  /// The active fault injector, or nullptr when no plan is in effect.
  /// Non-send fault points (e.g. server-request drops in vp::ServerSystem)
  /// consult this.
  fault::Injector* faults() { return injector_.get(); }

  /// Installs (or, with an inactive plan, removes) a programmatic fault
  /// plan, replacing whatever TDP_FAULT established at construction.  Not
  /// thread-safe versus concurrent send() — call before spawning processes.
  void set_fault_plan(const fault::Plan& plan);

  /// A fresh communicator id (never 0); each distributed call draws one so
  /// its data-parallel messages form a disjoint type set.  The source is
  /// process-global so communicator ids stay unique across Machine
  /// instances — trace records from different runtimes never alias.
  static std::uint64_t next_comm() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1) + 1;
  }

  /// Number of messages delivered through this machine (diagnostics).  The
  /// canonical message counter is the obs metrics primitive: per-VP sharded
  /// by destination, merged here with relaxed loads.
  std::uint64_t messages_sent() const { return messages_sent_.value(); }

  /// Messages delivered per destination virtual processor; entries sum to
  /// messages_sent().  (Exact per-VP attribution for machines of up to
  /// obs::kMetricShards processors; larger machines fold modulo the shard
  /// count, which preserves the sum.)
  std::vector<std::uint64_t> messages_by_vp() const {
    return messages_sent_.per_shard(
        std::min<std::size_t>(static_cast<std::size_t>(nprocs()),
                              obs::kMetricShards));
  }

 private:
  void count_delivery(int dst);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  obs::ShardedCounter messages_sent_;
  std::vector<int> watchdog_tokens_;
  std::vector<int> telemetry_tokens_;
  std::unique_ptr<fault::Injector> injector_;  // nullptr = no active plan
  // Declared last: the transport's reader threads post into mailboxes_
  // through the LocalDeliver closure, so it must be torn down first.  The
  // destructor also shuts it down explicitly before closing mailboxes.
  std::unique_ptr<Transport> transport_;
};

/// The virtual processor the calling process is placed on, or -1 when the
/// calling thread has no placement (e.g. the program main thread).
int current_proc();

/// RAII placement annotation: while alive, current_proc() on this thread
/// returns `proc` (the `@p` annotation of the task-parallel notation).
class ProcScope {
 public:
  explicit ProcScope(int proc);
  ~ProcScope();
  ProcScope(const ProcScope&) = delete;
  ProcScope& operator=(const ProcScope&) = delete;

 private:
  int saved_;
};

}  // namespace tdp::vp
