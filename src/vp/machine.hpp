// The simulated multicomputer: a fixed set of virtual processors.
//
// The thesis maps processes and data to *virtual processors* — persistent
// entities with distinct address spaces, identified by a processor number
// (Preface, "Processes, processors, and virtual processors").  Machine
// models that substrate on one host:
//
//  * `nprocs()` virtual processors, numbered 0..nprocs()-1;
//  * each with its own Mailbox (distinct address spaces communicate only by
//    typed messages);
//  * a per-process "current processor" annotation (the `@p` placement of
//    PCN), maintained as a thread-local so library code can tell on which
//    virtual processor the calling process runs;
//  * a monotonically-increasing communicator-id source used to give every
//    distributed call a disjoint message-type set (§3.4.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "vp/mailbox.hpp"

namespace tdp::vp {

class Machine {
 public:
  /// Creates a machine with `nprocs` virtual processors.
  explicit Machine(int nprocs);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int nprocs() const { return static_cast<int>(mailboxes_.size()); }

  /// True when p is a valid processor number of this machine.
  bool valid_proc(int p) const { return p >= 0 && p < nprocs(); }

  /// The incoming mailbox of processor `dst`.
  Mailbox& mailbox(int dst);

  /// Sends `m` to processor `dst`; `m.src` must already identify the sender.
  void send(int dst, Message m);

  /// A fresh communicator id (never 0); each distributed call draws one so
  /// its data-parallel messages form a disjoint type set.
  std::uint64_t next_comm() { return comm_counter_.fetch_add(1) + 1; }

  /// Number of messages delivered through this machine (diagnostics).
  std::uint64_t messages_sent() const { return messages_sent_.load(); }

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<std::uint64_t> comm_counter_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
};

/// The virtual processor the calling process is placed on, or -1 when the
/// calling thread has no placement (e.g. the program main thread).
int current_proc();

/// RAII placement annotation: while alive, current_proc() on this thread
/// returns `proc` (the `@p` annotation of the task-parallel notation).
class ProcScope {
 public:
  explicit ProcScope(int proc);
  ~ProcScope();
  ProcScope(const ProcScope&) = delete;
  ProcScope& operator=(const ProcScope&) = delete;

 private:
  int saved_;
};

}  // namespace tdp::vp
