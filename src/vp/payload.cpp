#include "vp/payload.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace tdp::vp {

namespace {

// Substrate-side payload copies (wrapping caller storage into a buffer).
// Unconditional like Machine's messages_sent_: a relaxed sharded add, cheap
// enough to keep exact even with tracing off, and the A/B evidence for the
// zero-copy fan-out claim.
obs::ShardedCounter& bytes_copied() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("comm.bytes_copied");
  return c;
}

// User-facing delivery copies (buffer -> caller's typed span / vector).
obs::ShardedCounter& bytes_delivered() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("comm.bytes_delivered");
  return c;
}

}  // namespace

Payload Payload::copy_of(std::span<const std::byte> bytes) {
  if (bytes.empty()) return Payload();
  std::shared_ptr<std::byte[]> buf(new std::byte[bytes.size()]);
  std::memcpy(buf.get(), bytes.data(), bytes.size());
  bytes_copied().add(bytes.size());
  return Payload(std::move(buf), bytes.size());
}

Payload Payload::take(std::vector<std::byte>&& bytes) {
  if (bytes.empty()) return Payload();
  auto holder = std::make_shared<std::vector<std::byte>>(std::move(bytes));
  const std::size_t size = holder->size();
  std::shared_ptr<const std::byte[]> alias(holder, holder->data());
  return Payload(std::move(alias), size);
}

Payload Payload::zeros(std::size_t n) {
  if (n == 0) return Payload();
  std::shared_ptr<std::byte[]> buf(new std::byte[n]);
  std::memset(buf.get(), 0, n);
  return Payload(std::move(buf), n);
}

std::vector<std::byte> Payload::to_vector() const {
  if (size_ == 0) return {};
  bytes_delivered().add(size_);
  return std::vector<std::byte>(data_.get(), data_.get() + size_);
}

void note_bytes_delivered(std::size_t n) { bytes_delivered().add(n); }

}  // namespace tdp::vp
