#include "vp/mailbox.hpp"

#include <chrono>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::vp {

Mailbox::~Mailbox() {
  close();
  // Hold the door until every receiver woken by close() has finished
  // unwinding out of receive_impl; otherwise a woken thread could touch the
  // queue or condition variable after this destructor frees them.
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return waiters_ == 0; });
}

void Mailbox::post(Message m) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(m));
    depth = queue_.size();
  }
  cv_.notify_all();
  if (obs::enabled()) {
    wait_state_.progress.fetch_add(1, std::memory_order_relaxed);
    wait_state_.queue_depth.store(depth, std::memory_order_relaxed);
    obs::counter_sample(obs::Op::QueueDepth, depth, owner_);
    static obs::Histogram& depth_hist =
        obs::Registry::instance().histogram("mailbox.queue_depth");
    depth_hist.record(depth);
    static obs::MaxGauge& peak_depth =
        obs::Registry::instance().gauge("mailbox.peak_depth");
    peak_depth.record_at(owner_, depth);
  }
}

Message Mailbox::receive(const Predicate& match) {
  return receive_impl(match, nullptr, 0);
}

Message Mailbox::receive(MessageClass cls, std::uint64_t comm, int tag,
                         int src) {
  const WaitDetail detail{cls, comm, tag, src};
  return receive_impl(
      [=](const Message& m) {
        return m.cls == cls && m.comm == comm && m.tag == tag &&
               (src < 0 || m.src == src);
      },
      &detail, 0);
}

Message Mailbox::receive_for(const Predicate& match,
                             std::uint64_t timeout_ms) {
  return receive_impl(match, nullptr, timeout_ms);
}

Message Mailbox::receive_for(MessageClass cls, std::uint64_t comm, int tag,
                             int src, std::uint64_t timeout_ms) {
  const WaitDetail detail{cls, comm, tag, src};
  return receive_impl(
      [=](const Message& m) {
        return m.cls == cls && m.comm == comm && m.tag == tag &&
               (src < 0 || m.src == src);
      },
      &detail, timeout_ms);
}

void Mailbox::throw_timeout(const WaitDetail* detail,
                            std::uint64_t timeout_ms) {
  // Caller holds mutex_.  Build a stall-report-shaped message: what was
  // awaited and what was available but did not match.
  std::ostringstream what;
  what << "tdp::vp receive timeout after " << timeout_ms << " ms on vp"
       << owner_ << " awaiting ";
  if (detail != nullptr) {
    what << "(cls="
         << (detail->cls == MessageClass::DataParallel ? "data" : "task")
         << ", comm=" << detail->comm << ", tag=" << detail->tag << ", src=";
    if (detail->src < 0) {
      what << "any";
    } else {
      what << detail->src;
    }
    what << ")";
  } else {
    what << "(opaque predicate)";
  }
  what << "; " << describe_pending_locked();
  if (obs::enabled()) {
    static obs::ShardedCounter& timeout_count =
        obs::Registry::instance().counter("fault.timeouts");
    timeout_count.add();
    obs::instant(
        obs::Op::FaultTimeout, detail != nullptr ? detail->comm : 0,
        static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
        detail != nullptr
            ? static_cast<std::uint64_t>(static_cast<unsigned>(detail->tag))
            : 0);
  }
  if (detail != nullptr) {
    throw ReceiveTimeout(what.str(), owner_, true, detail->cls, detail->comm,
                         detail->tag, detail->src);
  }
  throw ReceiveTimeout(what.str(), owner_, false, MessageClass::TaskParallel,
                       0, 0, -1);
}

Message Mailbox::receive_impl(const Predicate& match, const WaitDetail* detail,
                              std::uint64_t timeout_ms) {
  static obs::Histogram& wait_hist =
      obs::Registry::instance().histogram("mailbox.recv_wait_ns");
  static obs::ShardedCounter& miss_count =
      obs::Registry::instance().counter("mailbox.recv_miss");
  obs::Span span(obs::Op::MsgRecv, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
                 &wait_hist);
  // One kill-switch load per receive; the hot match path below then costs
  // a single predicted branch on a register-cached bool when tracing is
  // off, exactly like the un-instrumented baseline.
  const bool obs_on = obs::enabled();
  const auto deadline =
      timeout_ms > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::milliseconds(timeout_ms)
          : std::chrono::steady_clock::time_point{};

  std::unique_lock<std::mutex> lock(mutex_);
  ++waiters_;
  // Declared after `lock`, so it runs first during unwinding while the
  // mutex is still held; the last waiter out wakes a draining ~Mailbox.
  struct WaiterGuard {
    Mailbox& box;
    std::unique_lock<std::mutex>& lock;
    ~WaiterGuard() {
      if (!lock.owns_lock()) lock.lock();
      if (--box.waiters_ == 0 && box.closed_) box.cv_.notify_all();
    }
  } guard{*this, lock};

  bool timed_out = false;
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (match(*it)) {
        Message out = std::move(*it);
        queue_.erase(it);
        if (obs_on) {
          span.set_comm(out.comm);
          span.set_arg1(out.payload.size());
          // Recover the trace context stamped at Machine::send: the span's
          // flow id pairs this receive with its send in the exported trace.
          span.set_flow(out.flow);
          wait_state_.blocked_since_ns.store(0, std::memory_order_relaxed);
          wait_state_.progress.fetch_add(1, std::memory_order_relaxed);
          wait_state_.queue_depth.store(queue_.size(),
                                        std::memory_order_relaxed);
        }
        return out;
      }
    }
    if (closed_) {
      if (obs_on) {
        wait_state_.blocked_since_ns.store(0, std::memory_order_relaxed);
      }
      throw MailboxClosed();
    }
    if (timed_out) {
      // The deadline passed and a final scan (above) still found nothing.
      if (obs_on) {
        wait_state_.blocked_since_ns.store(0, std::memory_order_relaxed);
      }
      throw_timeout(detail, timeout_ms);
    }
    // A selective-receive miss: nothing queued matches and the receiver
    // must block — the §3.4.1 hazard the disjoint type sets exist to bound.
    if (obs_on) {
      obs::instant(obs::Op::RecvMiss, 0,
                   static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
                   queue_.size());
      miss_count.add();
      // Publish what we are waiting for; keep the first block timestamp so
      // the watchdog reports time-since-block, not time-since-last-wake.
      if (detail != nullptr) {
        wait_state_.wait_cls.store(static_cast<std::int32_t>(detail->cls),
                                   std::memory_order_relaxed);
        wait_state_.wait_comm.store(detail->comm, std::memory_order_relaxed);
        wait_state_.wait_tag.store(detail->tag, std::memory_order_relaxed);
        wait_state_.wait_src.store(detail->src, std::memory_order_relaxed);
      } else {
        // Opaque predicate: publish an explicit "opaque" detail and clear
        // the tuple fields so a stall report never shows leftovers from an
        // earlier detailed wait on the same mailbox.
        wait_state_.wait_cls.store(-1, std::memory_order_relaxed);
        wait_state_.wait_comm.store(0, std::memory_order_relaxed);
        wait_state_.wait_tag.store(0, std::memory_order_relaxed);
        wait_state_.wait_src.store(-1, std::memory_order_relaxed);
      }
      if (wait_state_.blocked_since_ns.load(std::memory_order_relaxed) == 0) {
        wait_state_.blocked_since_ns.store(obs::now_ns(),
                                           std::memory_order_relaxed);
      }
    }
    if (timeout_ms == 0) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One more scan at the top of the loop before giving up: a message
      // posted right at the deadline must still be delivered, not lost to
      // a spurious timeout.
      timed_out = true;
    }
  }
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::string Mailbox::describe_pending_locked() const {
  constexpr std::size_t kMaxShown = 8;
  std::ostringstream out;
  out << queue_.size() << " pending";
  if (!queue_.empty()) {
    out << ": ";
    std::size_t shown = 0;
    for (const Message& m : queue_) {
      if (shown == kMaxShown) {
        out << " ...";
        break;
      }
      if (shown != 0) out << " ";
      out << "[cls=" << (m.cls == MessageClass::DataParallel ? "data" : "task")
          << " comm=" << m.comm << " tag=" << m.tag << " src=" << m.src
          << " flow=" << m.flow << " " << m.payload.size() << "B]";
      ++shown;
    }
  }
  return out.str();
}

std::string Mailbox::describe_pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return describe_pending_locked();
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace tdp::vp
