#include "vp/mailbox.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/attr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::vp {

namespace {

// -1 = no force() override; else the MailboxMode value.
std::atomic<int> g_forced_mode{-1};

MailboxMode env_mode() {
  static const MailboxMode parsed = [] {
    const char* env = std::getenv("TDP_MAILBOX");
    if (env == nullptr || env[0] == '\0') return MailboxMode::Indexed;
    if (std::strcmp(env, "indexed") == 0) return MailboxMode::Indexed;
    if (std::strcmp(env, "linear") == 0) return MailboxMode::Linear;
    // Mirror the guarded env parsing in coll.cpp/watchdog.cpp: a typo must
    // be reported, never silently remapped.
    std::fprintf(stderr,
                 "tdp::vp: ignoring unknown TDP_MAILBOX \"%s\"; valid "
                 "values are \"indexed\" and \"linear\" (using indexed)\n",
                 env);
    return MailboxMode::Indexed;
  }();
  return parsed;
}

obs::ShardedCounter& wakeup_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("mailbox.wakeups");
  return c;
}

}  // namespace

MailboxMode mailbox_mode() {
  const int forced = g_forced_mode.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<MailboxMode>(forced);
  return env_mode();
}

void force_mailbox_mode(MailboxMode m) {
  g_forced_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

void unforce_mailbox_mode() {
  g_forced_mode.store(-1, std::memory_order_relaxed);
}

Mailbox::~Mailbox() {
  close();
  // Hold the door until every receiver woken by close() has finished
  // unwinding out of the receive path; otherwise a woken thread could touch
  // the queue, waiter lists, or condition variables after this destructor
  // frees them.
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return waiters_ == 0; });
}

void Mailbox::post(Message m) {
  const bool obs_on = obs::enabled();
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) {
    // The send raced machine teardown: nobody can ever receive this, so
    // enqueueing it would only pin its refcounted payload until the mailbox
    // is freed.  Drop it, visibly.
    static obs::ShardedCounter& after_close =
        obs::Registry::instance().counter("mailbox.post_after_close");
    after_close.add_at(owner_);
    if (obs_on) {
      obs::instant(obs::Op::PostAfterClose, m.comm,
                   static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
                   static_cast<std::uint64_t>(static_cast<unsigned>(m.tag)));
    }
    return;
  }
  const std::uint64_t seq = ++next_seq_;
  const int src = m.src;
  if (obs_on) m.enq_ns = obs::now_ns();
  Bucket& bucket = buckets_[BucketKey{m.cls, m.comm, m.tag}];
  bucket.seqs.push_back(seq);
  queue_.emplace(seq, std::move(m));
  const std::size_t depth = queue_.size();

  if (mode_ == MailboxMode::Linear) {
    // Legacy behaviour: every post wakes every waiter; each rescans.
    wake_all_locked();
  } else {
    // Targeted wakeup: the first registered waiter in this bucket whose src
    // filter admits the message, if any is still asleep.  Waiters already
    // notified will rescan anyway; waking a second one for the same message
    // would just bounce it off an empty scan.
    for (Waiter* w : bucket.waiters) {
      if (!w->notified && (w->src < 0 || w->src == src)) {
        wake_waiter_locked(*w);
        break;
      }
    }
    // Opaque predicates are unknowable to the index: every one of them
    // might match this message, so all of them get woken (the legacy lane).
    for (Waiter* w : scan_waiters_) {
      if (!w->notified) {
        wake_waiter_locked(*w);
      }
    }
  }
  if (obs_on) {
    // Published under mutex_ (and from the captured depth) so the gauge and
    // the histogram can never observe a stale or backwards depth relative
    // to the queue they describe.
    wait_state_.progress.fetch_add(1, std::memory_order_relaxed);
    wait_state_.queue_depth.store(depth, std::memory_order_relaxed);
    obs::counter_sample(obs::Op::QueueDepth, depth, owner_);
    static obs::Histogram& depth_hist =
        obs::Registry::instance().histogram("mailbox.queue_depth");
    depth_hist.record(depth);
    static obs::MaxGauge& peak_depth =
        obs::Registry::instance().gauge("mailbox.peak_depth");
    peak_depth.record_at(owner_, depth);
  }
}

Message Mailbox::receive(const Predicate& match) {
  return receive_scan(match, nullptr, 0);
}

Message Mailbox::receive(MessageClass cls, std::uint64_t comm, int tag,
                         int src) {
  const WaitDetail detail{cls, comm, tag, src};
  if (mode_ == MailboxMode::Linear) {
    return receive_scan(
        [=](const Message& m) {
          return m.cls == cls && m.comm == comm && m.tag == tag &&
                 (src < 0 || m.src == src);
        },
        &detail, 0);
  }
  return receive_indexed(detail, 0);
}

Message Mailbox::receive_for(const Predicate& match,
                             std::uint64_t timeout_ms) {
  return receive_scan(match, nullptr, timeout_ms);
}

Message Mailbox::receive_for(MessageClass cls, std::uint64_t comm, int tag,
                             int src, std::uint64_t timeout_ms) {
  const WaitDetail detail{cls, comm, tag, src};
  if (mode_ == MailboxMode::Linear) {
    return receive_scan(
        [=](const Message& m) {
          return m.cls == cls && m.comm == comm && m.tag == tag &&
                 (src < 0 || m.src == src);
        },
        &detail, timeout_ms);
  }
  return receive_indexed(detail, timeout_ms);
}

void Mailbox::throw_timeout(const WaitDetail* detail,
                            std::uint64_t timeout_ms) {
  // Caller holds mutex_.  Build a stall-report-shaped message: what was
  // awaited and what was available but did not match.
  std::ostringstream what;
  what << "tdp::vp receive timeout after " << timeout_ms << " ms on vp"
       << owner_ << " awaiting ";
  if (detail != nullptr) {
    what << "(cls="
         << (detail->cls == MessageClass::DataParallel ? "data" : "task")
         << ", comm=" << detail->comm << ", tag=" << detail->tag << ", src=";
    if (detail->src < 0) {
      what << "any";
    } else {
      what << detail->src;
    }
    what << ")";
  } else {
    what << "(opaque predicate)";
  }
  what << "; " << describe_pending_locked();
  // A plain deadline expiry is a mailbox event, not an injected fault:
  // fault.* metrics are reserved for the injector, so counting expiries
  // there would make every slow peer look like a fault plan.
  static obs::ShardedCounter& timeout_count =
      obs::Registry::instance().counter("mailbox.recv_timeouts");
  timeout_count.add_at(owner_);
  if (obs::enabled()) {
    obs::instant(
        obs::Op::FaultTimeout, detail != nullptr ? detail->comm : 0,
        static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
        detail != nullptr
            ? static_cast<std::uint64_t>(static_cast<unsigned>(detail->tag))
            : 0);
  }
  if (detail != nullptr) {
    throw ReceiveTimeout(what.str(), owner_, true, detail->cls, detail->comm,
                         detail->tag, detail->src);
  }
  throw ReceiveTimeout(what.str(), owner_, false, MessageClass::TaskParallel,
                       0, 0, -1);
}

void Mailbox::unlink_from_bucket_locked(const Message& m, std::uint64_t seq) {
  auto it = buckets_.find(BucketKey{m.cls, m.comm, m.tag});
  Bucket& bucket = it->second;
  auto sit = std::lower_bound(bucket.seqs.begin(), bucket.seqs.end(), seq);
  bucket.seqs.erase(sit);
  maybe_gc_bucket_locked(it);
}

void Mailbox::maybe_gc_bucket_locked(BucketMap::iterator it) {
  if (it->second.seqs.empty() && it->second.waiters.empty()) {
    buckets_.erase(it);
  }
}

void Mailbox::deregister_locked(Waiter& w) {
  if (!w.registered) return;
  w.registered = false;
  if (w.has_tuple) {
    auto it = buckets_.find(BucketKey{w.cls, w.comm, w.tag});
    auto& waiters = it->second.waiters;
    waiters.erase(std::find(waiters.begin(), waiters.end(), &w));
    maybe_gc_bucket_locked(it);
    return;
  }
  scan_waiters_.erase(
      std::find(scan_waiters_.begin(), scan_waiters_.end(), &w));
}

void Mailbox::wake_waiter_locked(Waiter& w) {
  w.notified = true;
  if (w.task != nullptr) {
    // The receiver is a suspended scheduler fiber.  We hold mutex_ — the
    // mutex it parked with — so ready() cannot race its teardown (the
    // fiber re-acquires mutex_ before its waiter record leaves scope).
    sched::ready(w.task);
  } else {
    w.cv.notify_one();
  }
}

void Mailbox::wait_waiter_locked(std::unique_lock<std::mutex>& lock,
                                 Waiter& w, std::uint64_t timeout_ms,
                                 std::chrono::steady_clock::time_point deadline,
                                 bool& timed_out) {
  w.notified = false;
  if (sched::on_worker_fiber()) {
    // Steal lane: the receiver suspends as a task record (both the indexed
    // and the opaque lane — a thread-blocking fiber would wedge its worker
    // for as long as the message takes to arrive).
    w.task = sched::current_task();
    wait_state_.suspended_waiters.fetch_add(1, std::memory_order_relaxed);
    if (timeout_ms == 0) {
      sched::park(lock);
    } else {
      sched::park_until(lock, deadline);
      if (!w.notified && std::chrono::steady_clock::now() >= deadline) {
        timed_out = true;
      }
    }
    wait_state_.suspended_waiters.fetch_sub(1, std::memory_order_relaxed);
    w.task = nullptr;
    return;
  }
  if (timeout_ms == 0) {
    w.cv.wait(lock);
  } else if (w.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
    timed_out = true;
  }
}

void Mailbox::wake_all_locked() {
  for (auto& [key, bucket] : buckets_) {
    for (Waiter* w : bucket.waiters) {
      wake_waiter_locked(*w);
    }
  }
  for (Waiter* w : scan_waiters_) {
    wake_waiter_locked(*w);
  }
}

void Mailbox::note_delivery_locked(const Message& out, bool obs_on) {
  if (!obs_on) return;
  note_unblock_locked();
  wait_state_.progress.fetch_add(1, std::memory_order_relaxed);
  wait_state_.queue_depth.store(queue_.size(), std::memory_order_relaxed);
  (void)out;
}

void Mailbox::note_unblock_locked() {
  const std::uint64_t since =
      wait_state_.blocked_since_ns.load(std::memory_order_relaxed);
  if (since == 0) return;
  const std::uint64_t now = obs::now_ns();
  if (now > since) {
    wait_state_.blocked_ns_total.fetch_add(now - since,
                                           std::memory_order_relaxed);
  }
  wait_state_.blocked_since_ns.store(0, std::memory_order_relaxed);
}

void Mailbox::note_block_locked(const WaitDetail* detail, bool obs_on) {
  if (!obs_on) return;
  static obs::ShardedCounter& miss_count =
      obs::Registry::instance().counter("mailbox.recv_miss");
  obs::instant(obs::Op::RecvMiss, 0,
               static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
               queue_.size());
  miss_count.add();
  // Publish what we are waiting for; keep the first block timestamp so
  // the watchdog reports time-since-block, not time-since-last-wake.
  if (detail != nullptr) {
    wait_state_.wait_cls.store(static_cast<std::int32_t>(detail->cls),
                               std::memory_order_relaxed);
    wait_state_.wait_comm.store(detail->comm, std::memory_order_relaxed);
    wait_state_.wait_tag.store(detail->tag, std::memory_order_relaxed);
    wait_state_.wait_src.store(detail->src, std::memory_order_relaxed);
  } else {
    // Opaque predicate: publish an explicit "opaque" detail and clear
    // the tuple fields so a stall report never shows leftovers from an
    // earlier detailed wait on the same mailbox.
    wait_state_.wait_cls.store(-1, std::memory_order_relaxed);
    wait_state_.wait_comm.store(0, std::memory_order_relaxed);
    wait_state_.wait_tag.store(0, std::memory_order_relaxed);
    wait_state_.wait_src.store(-1, std::memory_order_relaxed);
  }
  if (wait_state_.blocked_since_ns.load(std::memory_order_relaxed) == 0) {
    wait_state_.blocked_since_ns.store(obs::now_ns(),
                                       std::memory_order_relaxed);
  }
}

namespace {

/// Shared unwind bookkeeping for both receive lanes.  Declared after the
/// unique_lock at each use site, so it runs first during unwinding while
/// the mutex is still held; the last waiter out wakes a draining ~Mailbox.
struct WaiterGuard {
  Mailbox& box;
  std::unique_lock<std::mutex>& lock;
  const std::function<void()> on_exit;
  ~WaiterGuard() {
    if (!lock.owns_lock()) lock.lock();
    on_exit();
  }
};

/// Folds one delivery into the owning call's attribution ledger: the
/// message's queue wait (delivery minus enqueue), its payload bytes, and
/// the receiver's wall time inside this receive.  Caller holds the mailbox
/// lock; the CallTable shard mutex is a leaf, so the order is safe.  No-op
/// for traffic outside any tracked call (comm 0, foreign comms).
void attribute_delivery(const Message& out, std::uint64_t recv_t0) {
  if (out.comm == 0) return;
  const std::uint64_t now = obs::now_ns();
  obs::CallTable::instance().on_delivery(
      out.comm, out.enq_ns != 0 && now > out.enq_ns ? now - out.enq_ns : 0,
      out.payload.size(),
      recv_t0 != 0 && now > recv_t0 ? now - recv_t0 : 0);
}

}  // namespace

Message Mailbox::receive_indexed(const WaitDetail& detail,
                                 std::uint64_t timeout_ms) {
  static obs::Histogram& wait_hist =
      obs::Registry::instance().histogram("mailbox.recv_wait_ns");
  obs::Span span(obs::Op::MsgRecv, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
                 &wait_hist);
  // One kill-switch load per receive; the hot match path below then costs
  // a single predicted branch on a register-cached bool when tracing is
  // off, exactly like the un-instrumented baseline.
  const bool obs_on = obs::enabled();
  const std::uint64_t recv_t0 = obs_on ? obs::now_ns() : 0;
  const auto deadline =
      timeout_ms > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::milliseconds(timeout_ms)
          : std::chrono::steady_clock::time_point{};
  const BucketKey key{detail.cls, detail.comm, detail.tag};

  std::unique_lock<std::mutex> lock(mutex_);
  ++waiters_;
  Waiter w;
  w.has_tuple = true;
  w.cls = detail.cls;
  w.comm = detail.comm;
  w.tag = detail.tag;
  w.src = detail.src;
  WaiterGuard guard{*this, lock, [this, &w] {
                      deregister_locked(w);
                      if (--waiters_ == 0 && closed_) drain_cv_.notify_all();
                    }};

  bool timed_out = false;
  for (;;) {
    if (auto bit = buckets_.find(key); bit != buckets_.end()) {
      Bucket& bucket = bit->second;
      // The cursor skips every message this waiter already rejected: only
      // arrivals newer than the last examined seq are scanned, so a waiter
      // behind N unmatching messages pays for each exactly once.
      auto sit = std::lower_bound(bucket.seqs.begin(), bucket.seqs.end(),
                                  w.cursor + 1);
      for (; sit != bucket.seqs.end(); ++sit) {
        const std::uint64_t seq = *sit;
        auto qit = queue_.find(seq);
        if (detail.src >= 0 && qit->second.src != detail.src) {
          w.cursor = seq;
          continue;
        }
        Message out = std::move(qit->second);
        queue_.erase(qit);
        bucket.seqs.erase(sit);
        maybe_gc_bucket_locked(bit);
        note_delivery_locked(out, obs_on);
        if (obs_on) {
          span.set_comm(out.comm);
          span.set_arg1(out.payload.size());
          // Recover the trace context stamped at Machine::send: the span's
          // flow id pairs this receive with its send in the exported trace.
          span.set_flow(out.flow);
          attribute_delivery(out, recv_t0);
        }
        return out;
      }
    }
    if (closed_) {
      if (obs_on) note_unblock_locked();
      throw MailboxClosed();
    }
    if (timed_out) {
      // The deadline passed and a final scan (above) still found nothing.
      if (obs_on) note_unblock_locked();
      throw_timeout(&detail, timeout_ms);
    }
    if (!w.registered) {
      buckets_[key].waiters.push_back(&w);
      w.registered = true;
    }
    note_block_locked(&detail, obs_on);
    wait_state_.blocked_waiters.fetch_add(1, std::memory_order_relaxed);
    // On a timeout, one more scan at the top of the loop before giving up:
    // a message posted right at the deadline must still be delivered, not
    // lost to a spurious timeout.
    wait_waiter_locked(lock, w, timeout_ms, deadline, timed_out);
    wait_state_.blocked_waiters.fetch_sub(1, std::memory_order_relaxed);
    wakeup_counter().add_at(owner_);
  }
}

Message Mailbox::receive_scan(const Predicate& match,
                              const WaitDetail* detail,
                              std::uint64_t timeout_ms) {
  static obs::Histogram& wait_hist =
      obs::Registry::instance().histogram("mailbox.recv_wait_ns");
  obs::Span span(obs::Op::MsgRecv, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
                 &wait_hist);
  const bool obs_on = obs::enabled();
  const std::uint64_t recv_t0 = obs_on ? obs::now_ns() : 0;
  const auto deadline =
      timeout_ms > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::milliseconds(timeout_ms)
          : std::chrono::steady_clock::time_point{};

  std::unique_lock<std::mutex> lock(mutex_);
  ++waiters_;
  Waiter w;  // has_tuple = false: lives in the any-message lane
  WaiterGuard guard{*this, lock, [this, &w] {
                      deregister_locked(w);
                      if (--waiters_ == 0 && closed_) drain_cv_.notify_all();
                    }};

  bool timed_out = false;
  for (;;) {
    // The legacy lane scans every queued message in arrival order — the
    // map is keyed by the arrival seq, so iteration order IS arrival order.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (match(it->second)) {
        Message out = std::move(it->second);
        const std::uint64_t seq = it->first;
        queue_.erase(it);
        unlink_from_bucket_locked(out, seq);
        note_delivery_locked(out, obs_on);
        if (obs_on) {
          span.set_comm(out.comm);
          span.set_arg1(out.payload.size());
          span.set_flow(out.flow);
          attribute_delivery(out, recv_t0);
        }
        return out;
      }
    }
    if (closed_) {
      if (obs_on) note_unblock_locked();
      throw MailboxClosed();
    }
    if (timed_out) {
      if (obs_on) note_unblock_locked();
      throw_timeout(detail, timeout_ms);
    }
    if (!w.registered) {
      scan_waiters_.push_back(&w);
      w.registered = true;
    }
    note_block_locked(detail, obs_on);
    wait_state_.blocked_waiters.fetch_add(1, std::memory_order_relaxed);
    wait_waiter_locked(lock, w, timeout_ms, deadline, timed_out);
    wait_state_.blocked_waiters.fetch_sub(1, std::memory_order_relaxed);
    wakeup_counter().add_at(owner_);
  }
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::string Mailbox::describe_pending_locked() const {
  constexpr std::size_t kMaxShown = 8;
  std::ostringstream out;
  out << queue_.size() << " pending";
  if (!queue_.empty()) {
    out << ": ";
    std::size_t shown = 0;
    for (const auto& [seq, m] : queue_) {
      if (shown == kMaxShown) {
        out << " ...";
        break;
      }
      if (shown != 0) out << " ";
      out << "[cls=" << (m.cls == MessageClass::DataParallel ? "data" : "task")
          << " comm=" << m.comm << " tag=" << m.tag << " src=" << m.src
          << " flow=" << m.flow << " " << m.payload.size() << "B]";
      ++shown;
    }
  }
  return out.str();
}

std::string Mailbox::describe_pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return describe_pending_locked();
}

std::string Mailbox::describe_wait() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << describe_pending_locked();
  std::size_t waiting = scan_waiters_.size();
  for (const auto& [key, bucket] : buckets_) waiting += bucket.waiters.size();
  if (waiting == 0) return out.str();
  out << "; " << waiting << " waiting:";
  for (const auto& [key, bucket] : buckets_) {
    for (const Waiter* w : bucket.waiters) {
      out << " (cls="
          << (w->cls == MessageClass::DataParallel ? "data" : "task")
          << ", comm=" << w->comm << ", tag=" << w->tag << ", src=";
      if (w->src < 0) {
        out << "any";
      } else {
        out << w->src;
      }
      out << ")";
    }
  }
  for (std::size_t i = 0; i < scan_waiters_.size(); ++i) out << " (opaque)";
  return out.str();
}

void Mailbox::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  wake_all_locked();
}

}  // namespace tdp::vp
