#include "vp/mailbox.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::vp {

void Mailbox::post(Message m) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(m));
    depth = queue_.size();
  }
  cv_.notify_all();
  if (obs::enabled()) {
    wait_state_.progress.fetch_add(1, std::memory_order_relaxed);
    wait_state_.queue_depth.store(depth, std::memory_order_relaxed);
    obs::counter_sample(obs::Op::QueueDepth, depth, owner_);
    static obs::Histogram& depth_hist =
        obs::Registry::instance().histogram("mailbox.queue_depth");
    depth_hist.record(depth);
    static obs::MaxGauge& peak_depth =
        obs::Registry::instance().gauge("mailbox.peak_depth");
    peak_depth.record_at(owner_, depth);
  }
}

Message Mailbox::receive(const Predicate& match) {
  return receive_impl(match, nullptr);
}

Message Mailbox::receive(MessageClass cls, std::uint64_t comm, int tag,
                         int src) {
  const WaitDetail detail{cls, comm, tag, src};
  return receive_impl(
      [=](const Message& m) {
        return m.cls == cls && m.comm == comm && m.tag == tag &&
               (src < 0 || m.src == src);
      },
      &detail);
}

Message Mailbox::receive_impl(const Predicate& match,
                              const WaitDetail* detail) {
  static obs::Histogram& wait_hist =
      obs::Registry::instance().histogram("mailbox.recv_wait_ns");
  static obs::ShardedCounter& miss_count =
      obs::Registry::instance().counter("mailbox.recv_miss");
  obs::Span span(obs::Op::MsgRecv, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
                 &wait_hist);
  // One kill-switch load per receive; the hot match path below then costs
  // a single predicted branch on a register-cached bool when tracing is
  // off, exactly like the un-instrumented baseline.
  const bool obs_on = obs::enabled();

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (match(*it)) {
        Message out = std::move(*it);
        queue_.erase(it);
        if (obs_on) {
          span.set_comm(out.comm);
          span.set_arg1(out.payload.size());
          // Recover the trace context stamped at Machine::send: the span's
          // flow id pairs this receive with its send in the exported trace.
          span.set_flow(out.flow);
          wait_state_.blocked_since_ns.store(0, std::memory_order_relaxed);
          wait_state_.progress.fetch_add(1, std::memory_order_relaxed);
          wait_state_.queue_depth.store(queue_.size(),
                                        std::memory_order_relaxed);
        }
        return out;
      }
    }
    if (closed_) {
      if (obs_on) {
        wait_state_.blocked_since_ns.store(0, std::memory_order_relaxed);
      }
      throw MailboxClosed();
    }
    // A selective-receive miss: nothing queued matches and the receiver
    // must block — the §3.4.1 hazard the disjoint type sets exist to bound.
    if (obs_on) {
      obs::instant(obs::Op::RecvMiss, 0,
                   static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
                   queue_.size());
      miss_count.add();
      // Publish what we are waiting for; keep the first block timestamp so
      // the watchdog reports time-since-block, not time-since-last-wake.
      if (detail != nullptr) {
        wait_state_.wait_cls.store(static_cast<std::int32_t>(detail->cls),
                                   std::memory_order_relaxed);
        wait_state_.wait_comm.store(detail->comm, std::memory_order_relaxed);
        wait_state_.wait_tag.store(detail->tag, std::memory_order_relaxed);
        wait_state_.wait_src.store(detail->src, std::memory_order_relaxed);
      } else {
        wait_state_.wait_cls.store(-1, std::memory_order_relaxed);
      }
      if (wait_state_.blocked_since_ns.load(std::memory_order_relaxed) == 0) {
        wait_state_.blocked_since_ns.store(obs::now_ns(),
                                           std::memory_order_relaxed);
      }
    }
    cv_.wait(lock);
  }
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::string Mailbox::describe_pending() const {
  constexpr std::size_t kMaxShown = 8;
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << queue_.size() << " pending";
  if (!queue_.empty()) {
    out << ": ";
    std::size_t shown = 0;
    for (const Message& m : queue_) {
      if (shown == kMaxShown) {
        out << " ...";
        break;
      }
      if (shown != 0) out << " ";
      out << "[cls=" << (m.cls == MessageClass::DataParallel ? "data" : "task")
          << " comm=" << m.comm << " tag=" << m.tag << " src=" << m.src
          << " flow=" << m.flow << " " << m.payload.size() << "B]";
      ++shown;
    }
  }
  return out.str();
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace tdp::vp
