#include "vp/mailbox.hpp"

namespace tdp::vp {

void Mailbox::post(Message m) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

Message Mailbox::receive(const Predicate& match) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (match(*it)) {
        Message out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    if (closed_) throw MailboxClosed();
    cv_.wait(lock);
  }
}

Message Mailbox::receive(MessageClass cls, std::uint64_t comm, int tag,
                         int src) {
  return receive([=](const Message& m) {
    return m.cls == cls && m.comm == comm && m.tag == tag &&
           (src < 0 || m.src == src);
  });
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace tdp::vp
