#include "vp/mailbox.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::vp {

void Mailbox::post(Message m) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(m));
    depth = queue_.size();
  }
  cv_.notify_all();
  if (obs::enabled()) {
    obs::counter_sample(obs::Op::QueueDepth, depth, owner_);
    static obs::Histogram& depth_hist =
        obs::Registry::instance().histogram("mailbox.queue_depth");
    depth_hist.record(depth);
  }
}

Message Mailbox::receive(const Predicate& match) {
  static obs::Histogram& wait_hist =
      obs::Registry::instance().histogram("mailbox.recv_wait_ns");
  static obs::ShardedCounter& miss_count =
      obs::Registry::instance().counter("mailbox.recv_miss");
  obs::Span span(obs::Op::MsgRecv, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
                 &wait_hist);

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (match(*it)) {
        Message out = std::move(*it);
        queue_.erase(it);
        span.set_comm(out.comm);
        span.set_arg1(out.payload.size());
        return out;
      }
    }
    if (closed_) throw MailboxClosed();
    // A selective-receive miss: nothing queued matches and the receiver
    // must block — the §3.4.1 hazard the disjoint type sets exist to bound.
    if (obs::enabled()) {
      obs::instant(obs::Op::RecvMiss, 0,
                   static_cast<std::uint64_t>(static_cast<unsigned>(owner_)),
                   queue_.size());
      miss_count.add();
    }
    cv_.wait(lock);
  }
}

Message Mailbox::receive(MessageClass cls, std::uint64_t comm, int tag,
                         int src) {
  return receive([=](const Message& m) {
    return m.cls == cls && m.comm == comm && m.tag == tag &&
           (src < 0 || m.src == src);
  });
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace tdp::vp
