// vp::Transport — the message-delivery boundary under Machine::send.
//
// The thesis's runtime ran on a real multicomputer (Symult 2010 under the
// Cosmic Environment): processors were OS-level nodes and every message
// crossed a physical wire.  Our reproduction grew up inside one OS process
// — Machine::send posted straight into the destination Mailbox.  This
// interface abstracts that final hop so the same Machine, mailboxes,
// collectives, fault injector, and flow tracing run over two substrates:
//
//  * DirectTransport — the original in-process direct post (the default;
//    zero behavior change, zero added cost beyond one virtual call);
//  * UdsTransport (transport_uds.cpp) — one OS process per virtual
//    processor, full-mesh Unix-domain stream sockets, vp::Payload as the
//    serialization boundary.  Selected by TDP_TRANSPORT=uds with
//    TDP_RANK/TDP_SIZE/TDP_UDS_DIR describing this process's place in the
//    launched set (tools/tdp_launch sets all four).
//
// Layering: Machine::send stamps the causal flow id and applies the fault
// plan BEFORE handing the message to the transport — an injected drop or
// delay happens at the send boundary, never on the wire — so the fault
// model is identical across substrates.  On the receive side the remote
// backend posts deserialized messages through the same Mailbox::post path
// local sends use, so typed selective receive, poison fast-fail, receive
// deadlines, and trace recovery are substrate-blind.
//
// Wire framing (DESIGN.md §13): every message crosses the socket as a
// fixed 56-byte little-endian header followed by the payload bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "vp/mailbox.hpp"

namespace tdp::vp {

/// Delivery boundary under Machine::send.  Implementations are
/// constructed once per Machine and outlive every send; deliver() may be
/// called from any thread (senders are concurrent).
class Transport {
 public:
  /// Posts one message into a local mailbox: the in-process leg both
  /// backends share (Machine binds it to Mailbox::post + delivery
  /// accounting).
  using LocalDeliver = std::function<void(int dst, Message&&)>;

  virtual ~Transport() = default;

  /// Implementation name for diagnostics ("direct", "uds").
  virtual const char* name() const = 0;

  /// True when some destinations live in other OS processes.
  virtual bool remote() const { return false; }

  /// Delivers `m` toward processor `dst` — locally for the direct backend
  /// (and for a remote backend's own rank), framed onto the peer socket
  /// otherwise.  `dst` has been validated by Machine::send.
  virtual void deliver(int dst, Message&& m) = 0;

  /// One-line peer-health diagnostic, empty when all peers are healthy
  /// (always empty for the direct backend).  SpmdContext appends it to
  /// ReceiveTimeout errors so a deadline caused by a dead rank names the
  /// dead rank instead of reading like an ordinary lost message.
  virtual std::string diagnose() const { return {}; }

  /// Stops background reader/acceptor threads and closes sockets.  Called
  /// by ~Machine after the injector drain and BEFORE mailboxes close, so
  /// no reader can post into a destroyed mailbox.  Idempotent.
  virtual void shutdown() {}
};

/// The in-process direct-post backend (the pre-transport behavior).
std::unique_ptr<Transport> make_direct_transport(Transport::LocalDeliver d);

/// Reads TDP_TRANSPORT and builds the backend for a Machine of `nprocs`
/// processors:
///  * unset/"" / "direct" -> DirectTransport;
///  * "uds" -> UdsTransport, provided TDP_RANK/TDP_SIZE/TDP_UDS_DIR are
///    set and TDP_SIZE == nprocs; on any mismatch it warns loudly and
///    falls back to DirectTransport (a mis-launched process degrades to
///    the single-process behavior instead of hanging);
///  * anything else -> warn, DirectTransport.
std::unique_ptr<Transport> make_transport_from_env(
    int nprocs, Transport::LocalDeliver deliver);

namespace wire {

/// Frame magic "TDPM" (little-endian) — catches desynchronized streams
/// and foreign writers at the first frame.
inline constexpr std::uint32_t kFrameMagic = 0x4D504454u;
/// Connection-hello magic "TDPH"; the 8-byte hello (magic + sender rank)
/// is the first thing written on every connection, telling the acceptor
/// which rank the inbound stream belongs to.
inline constexpr std::uint32_t kHelloMagic = 0x48504454u;

inline constexpr std::size_t kHeaderBytes = 56;
inline constexpr std::size_t kHelloBytes = 8;

/// The decoded wire header: every Message envelope field that must
/// survive the process boundary, plus a per-connection frame sequence
/// number (desync detection) and the payload length.
struct FrameHeader {
  std::uint32_t cls = 0;           ///< MessageClass as u32
  std::uint64_t comm = 0;
  std::int32_t tag = 0;
  std::int32_t src = 0;
  std::int32_t poison_origin = -1;
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;           ///< per-connection frame counter
  std::uint64_t payload_bytes = 0;
};

/// Serializes `h` into the fixed little-endian layout (DESIGN.md §13).
void encode_header(const FrameHeader& h, std::byte out[kHeaderBytes]);

/// Deserializes a header; false when the magic does not match.
bool decode_header(const std::byte in[kHeaderBytes], FrameHeader& h);

/// The header for one outbound message (payload length taken from
/// m.payload; `seq` is the connection's running frame counter).
FrameHeader header_for(const Message& m, std::uint64_t seq);

/// Rebuilds the Message a header + payload crossed the wire as.  The
/// local-only envelope fields (enq_ns) are left zero: Mailbox::post
/// restamps them on the receiving side.
Message to_message(const FrameHeader& h, Payload payload);

void encode_hello(int rank, std::byte out[kHelloBytes]);
bool decode_hello(const std::byte in[kHelloBytes], int& rank_out);

}  // namespace wire

}  // namespace tdp::vp
