// The PCN server mechanism (§5.1.1).
//
// PCN 1.2 provides one server process per processor.  Any program can issue
// a *server request* to its local server; loading a module with a
// `capabilities` directive adds new request types, which the server then
// routes to that module's server program.  Requests can be executed on
// another processor with the `@Processor` annotation, and bidirectional
// communication works by including an undefined definitional variable in
// the request that the server program later defines.
//
// We reproduce that machinery: a ServerSystem has one server per virtual
// processor; add_capability() plays the role of loading a module with a
// capabilities directive (load_all of §C.3 = add_capability on every
// processor); request() posts a typed request to a processor's server,
// returning a definitional reply the handler defines.  Faithful to PCN's
// process model, the server spawns a process per request, so a handler may
// itself issue further server requests (as the array manager's global
// operations do) without deadlock.
#pragma once

#include <any>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pcn/def.hpp"
#include "vp/machine.hpp"

namespace tdp::vp {

/// A server request as delivered to a capability handler: the tuple
/// {"request_type", parameters, reply} of §5.1.1.
struct ServerRequest {
  std::string type;
  std::any parameters;
  pcn::Def<std::any> reply;  ///< handler defines this to answer
  int origin = -1;           ///< processor that issued the request
};

/// Handler for one capability.  Runs in its own process; must define
/// request.reply exactly once (even on error) so requesters never hang.
using Capability = std::function<void(ServerRequest&)>;

class ServerSystem {
 public:
  explicit ServerSystem(Machine& machine);
  ~ServerSystem();

  ServerSystem(const ServerSystem&) = delete;
  ServerSystem& operator=(const ServerSystem&) = delete;

  /// Adds a capability on one processor.
  void add_capability(int proc, const std::string& type, Capability handler);

  /// Adds a capability on every processor (the load_all of §C.3).
  void add_capability_all(const std::string& type, Capability handler);

  /// Issues a request to processor `proc`'s server (the `! type(...)` with
  /// an optional `@proc` annotation).  Returns immediately, like a PCN
  /// server request; the reply definitional becomes defined when the
  /// handler has serviced it.  An unknown request type yields a reply
  /// holding std::monostate-like empty std::any.  When the machine's fault
  /// injector is active the request may be lost in transit (failed
  /// destination, or the plan's drop probability): the reply then never
  /// becomes defined — callers that must survive this use
  /// pcn::Def::read_for with bounded retry (see dist/array_server.hpp).
  pcn::Def<std::any> request(int proc, const std::string& type,
                             std::any parameters, int origin = -1);

  /// Convenience: issues the request and waits for the reply.
  std::any request_wait(int proc, const std::string& type,
                        std::any parameters, int origin = -1);

  /// True when processor `proc` services `type`.
  bool has_capability(int proc, const std::string& type) const;

  /// Number of requests serviced by processor `proc`'s server so far.
  std::uint64_t serviced(int proc) const;

 private:
  struct Node {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::shared_ptr<ServerRequest>> queue;
    std::map<std::string, Capability> capabilities;
    std::vector<std::thread> workers;
    std::uint64_t serviced = 0;
    bool stopping = false;
    std::thread server;
  };

  void serve(int proc);

  Machine& machine_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace tdp::vp
