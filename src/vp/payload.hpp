// vp::Payload — an immutable, refcounted byte buffer for message payloads.
//
// The thesis's virtual processors have distinct address spaces and
// communicate only by typed messages; a real multicomputer therefore copies
// every payload onto the wire.  A *simulated* multicomputer on one host need
// not: because a Payload is immutable after construction, handing the same
// buffer to many receivers is observationally identical to sending each a
// private copy — no receiver can tell whether its bytes are shared.  That
// immutability contract is what lets a broadcast of one buffer to P-1 peers
// perform zero payload copies instead of P-1 (the substrate refcounts the
// one buffer), while preserving the distinct-address-space model exactly.
//
// Construction is explicit about cost:
//   * Payload::copy_of(bytes) copies once from caller-owned storage into a
//     fresh buffer (counted in the comm.bytes_copied metric) — required
//     when the caller may mutate its buffer after the send;
//   * Payload::take(std::move(vec)) adopts a vector's storage with no copy —
//     for producers that build the payload and hand it off.
// Receivers either borrow the buffer (recv_payload: refcount bump, no copy)
// or copy out into a typed span at the user-facing boundary (counted in
// comm.bytes_delivered).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace tdp::vp {

class Payload {
 public:
  /// An empty payload (size 0).
  Payload() = default;

  /// A fresh buffer holding a copy of `bytes`.  The one place the
  /// communication substrate copies payload bytes on the send side; adds
  /// bytes.size() to the comm.bytes_copied counter.
  static Payload copy_of(std::span<const std::byte> bytes);

  /// Adopts `bytes`'s storage without copying (the vector is left empty).
  static Payload take(std::vector<std::byte>&& bytes);

  /// A zero-filled buffer of `n` bytes (tests, padding).
  static Payload zeros(std::size_t n);

  /// Aliases `n` bytes at `data` inside storage kept alive by `keepalive`,
  /// with no copy at all.  The caller must guarantee the bytes are not
  /// mutated while any handle to this payload exists — the shard-migration
  /// path earns that by quiescing the shard before borrowing its storage.
  static Payload borrow(std::shared_ptr<const void> keepalive,
                        const std::byte* data, std::size_t n) {
    return Payload(
        std::shared_ptr<const std::byte[]>(std::move(keepalive), data), n);
  }

  const std::byte* data() const { return data_.get(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<const std::byte> bytes() const {
    return std::span<const std::byte>(data_.get(), size_);
  }

  /// Number of Payload handles sharing this buffer (diagnostics/tests);
  /// 0 for an empty payload.
  long use_count() const { return data_.use_count(); }

  /// Copies the buffer out into caller-owned storage (the user-facing
  /// delivery copy; adds size() to the comm.bytes_delivered counter).
  std::vector<std::byte> to_vector() const;

 private:
  Payload(std::shared_ptr<const std::byte[]> data, std::size_t size)
      : data_(std::move(data)), size_(size) {}

  std::shared_ptr<const std::byte[]> data_;
  std::size_t size_ = 0;
};

/// Adds `n` to the comm.bytes_delivered counter; for typed receive paths
/// that copy straight into a caller-owned span rather than via to_vector().
void note_bytes_delivered(std::size_t n);

}  // namespace tdp::vp
