// Discrete-event simulation substrate for the reactive problem class
// (thesis §2.3.3, fig 2.3).
//
// A problem in this class is a not-necessarily-regular graph of
// communicating processes, each process a data-parallel computation, with
// communication among neighbours performed by the task-parallel top level.
// The thesis example is a nuclear-reactor system whose components (pumps,
// valves, the reactor) are each simulated by a data-parallel program.
//
// EventSimulation provides the top level: components registered with a
// model function, directed connections along which output events travel,
// and a virtual-time event loop.  Model functions are free to make
// distributed calls on their component's processor group — that is the
// integration the thesis proposes — and models woken at the same virtual
// time are evaluated concurrently (they are independent processes of the
// reactive graph).
#pragma once

#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

namespace tdp::sim {

/// One event travelling between components.
struct Event {
  double time = 0.0;   ///< virtual time at which the event takes effect
  int source = -1;     ///< component that emitted it
  int kind = 0;        ///< model-defined discriminator
  std::vector<double> payload;
};

/// A component model: invoked at virtual time `now` with the events due at
/// that instant; returns events to deliver to the component's successors
/// (each event's `time` must be >= now).  Self-scheduling is done by
/// emitting an event with kind sim::kSelfWake.
using ModelFn = std::function<std::vector<Event>(
    double now, const std::vector<Event>& inputs)>;

/// Events of this kind are routed back to the emitting component instead of
/// to its successors (timer / self-wake events).
inline constexpr int kSelfWake = -1;

class EventSimulation {
 public:
  /// Adds a component; `first_wake` < 0 means the component starts idle and
  /// waits for input events.  Returns the component id.
  int add_component(std::string name, ModelFn model, double first_wake = 0.0);

  /// Routes events emitted by `from` to `to`.  A component may have any
  /// number of successors; every successor receives every event.
  void connect(int from, int to);

  const std::string& name(int component) const;

  struct Stats {
    long long events_delivered = 0;
    long long wakes = 0;
    double end_time = 0.0;
  };

  /// Runs the event loop until virtual time exceeds `t_end` or no events
  /// remain.  Components due at the same virtual time are evaluated
  /// concurrently (task-parallel composition of the reactive graph).
  Stats run(double t_end);

 private:
  struct Component {
    std::string name;
    ModelFn model;
    std::vector<int> successors;
  };

  struct Pending {
    double time;
    int target;
    Event event;
    bool operator>(const Pending& other) const { return time > other.time; }
  };

  void route(int from, std::vector<Event> outputs);

  std::vector<Component> components_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      queue_;
  Stats stats_;
};

}  // namespace tdp::sim
