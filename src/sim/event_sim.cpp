#include "sim/event_sim.hpp"

#include <stdexcept>

#include "pcn/process.hpp"

namespace tdp::sim {

int EventSimulation::add_component(std::string name, ModelFn model,
                                   double first_wake) {
  const int id = static_cast<int>(components_.size());
  components_.push_back(Component{std::move(name), std::move(model), {}});
  if (first_wake >= 0.0) {
    Event wake;
    wake.time = first_wake;
    wake.source = id;
    wake.kind = kSelfWake;
    queue_.push(Pending{first_wake, id, std::move(wake)});
  }
  return id;
}

void EventSimulation::connect(int from, int to) {
  if (from < 0 || to < 0 || from >= static_cast<int>(components_.size()) ||
      to >= static_cast<int>(components_.size())) {
    throw std::out_of_range("EventSimulation::connect: bad component id");
  }
  components_[static_cast<std::size_t>(from)].successors.push_back(to);
}

const std::string& EventSimulation::name(int component) const {
  return components_.at(static_cast<std::size_t>(component)).name;
}

void EventSimulation::route(int from, std::vector<Event> outputs) {
  for (Event& e : outputs) {
    e.source = from;
    if (e.kind == kSelfWake) {
      queue_.push(Pending{e.time, from, e});
      continue;
    }
    for (int succ : components_[static_cast<std::size_t>(from)].successors) {
      queue_.push(Pending{e.time, succ, e});
      ++stats_.events_delivered;
    }
  }
}

EventSimulation::Stats EventSimulation::run(double t_end) {
  stats_ = Stats{};
  while (!queue_.empty() && queue_.top().time <= t_end) {
    const double now = queue_.top().time;
    stats_.end_time = now;

    // Collect every event due at this instant, grouped by component.
    std::map<int, std::vector<Event>> due;
    while (!queue_.empty() && queue_.top().time == now) {
      Pending p = queue_.top();
      queue_.pop();
      due[p.target].push_back(std::move(p.event));
    }

    // Components woken at the same virtual time are independent processes
    // of the reactive graph: evaluate them with a parallel composition.
    std::vector<std::pair<int, std::vector<Event>>> wakes(due.begin(),
                                                          due.end());
    std::vector<std::vector<Event>> outputs(wakes.size());
    {
      pcn::ProcessGroup group;
      for (std::size_t w = 0; w < wakes.size(); ++w) {
        group.spawn([&, w] {
          const auto& [component, inputs] = wakes[w];
          outputs[w] = components_[static_cast<std::size_t>(component)].model(
              now, inputs);
        });
      }
      group.join();
    }
    for (std::size_t w = 0; w < wakes.size(); ++w) {
      for (const Event& e : outputs[w]) {
        if (e.time < now) {
          throw std::logic_error(
              "EventSimulation: model emitted an event in the past");
        }
      }
      route(wakes[w].first, std::move(outputs[w]));
      ++stats_.wakes;
    }
  }
  return stats_;
}

}  // namespace tdp::sim
