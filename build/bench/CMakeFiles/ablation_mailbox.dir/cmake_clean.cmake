file(REMOVE_RECURSE
  "CMakeFiles/ablation_mailbox.dir/ablation_mailbox.cpp.o"
  "CMakeFiles/ablation_mailbox.dir/ablation_mailbox.cpp.o.d"
  "ablation_mailbox"
  "ablation_mailbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mailbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
