# Empty compiler generated dependencies file for ablation_mailbox.
# This may be replaced when dependencies are built.
