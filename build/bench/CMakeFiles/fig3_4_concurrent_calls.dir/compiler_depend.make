# Empty compiler generated dependencies file for fig3_4_concurrent_calls.
# This may be replaced when dependencies are built.
