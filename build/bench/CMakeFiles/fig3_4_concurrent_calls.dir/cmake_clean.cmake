file(REMOVE_RECURSE
  "CMakeFiles/fig3_4_concurrent_calls.dir/fig3_4_concurrent_calls.cpp.o"
  "CMakeFiles/fig3_4_concurrent_calls.dir/fig3_4_concurrent_calls.cpp.o.d"
  "fig3_4_concurrent_calls"
  "fig3_4_concurrent_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_concurrent_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
