# Empty dependencies file for fig2_1_coupled.
# This may be replaced when dependencies are built.
