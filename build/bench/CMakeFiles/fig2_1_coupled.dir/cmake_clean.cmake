file(REMOVE_RECURSE
  "CMakeFiles/fig2_1_coupled.dir/fig2_1_coupled.cpp.o"
  "CMakeFiles/fig2_1_coupled.dir/fig2_1_coupled.cpp.o.d"
  "fig2_1_coupled"
  "fig2_1_coupled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_1_coupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
