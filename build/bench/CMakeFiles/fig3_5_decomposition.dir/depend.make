# Empty dependencies file for fig3_5_decomposition.
# This may be replaced when dependencies are built.
