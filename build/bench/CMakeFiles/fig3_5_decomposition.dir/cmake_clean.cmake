file(REMOVE_RECURSE
  "CMakeFiles/fig3_5_decomposition.dir/fig3_5_decomposition.cpp.o"
  "CMakeFiles/fig3_5_decomposition.dir/fig3_5_decomposition.cpp.o.d"
  "fig3_5_decomposition"
  "fig3_5_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_5_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
