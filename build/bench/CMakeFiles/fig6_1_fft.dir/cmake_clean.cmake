file(REMOVE_RECURSE
  "CMakeFiles/fig6_1_fft.dir/fig6_1_fft.cpp.o"
  "CMakeFiles/fig6_1_fft.dir/fig6_1_fft.cpp.o.d"
  "fig6_1_fft"
  "fig6_1_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_1_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
