# Empty dependencies file for fig6_1_fft.
# This may be replaced when dependencies are built.
