# Empty dependencies file for fig3_2_call_overhead.
# This may be replaced when dependencies are built.
