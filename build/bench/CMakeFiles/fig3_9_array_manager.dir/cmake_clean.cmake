file(REMOVE_RECURSE
  "CMakeFiles/fig3_9_array_manager.dir/fig3_9_array_manager.cpp.o"
  "CMakeFiles/fig3_9_array_manager.dir/fig3_9_array_manager.cpp.o.d"
  "fig3_9_array_manager"
  "fig3_9_array_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_9_array_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
