# Empty compiler generated dependencies file for fig3_9_array_manager.
# This may be replaced when dependencies are built.
