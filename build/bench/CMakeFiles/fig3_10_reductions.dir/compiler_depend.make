# Empty compiler generated dependencies file for fig3_10_reductions.
# This may be replaced when dependencies are built.
