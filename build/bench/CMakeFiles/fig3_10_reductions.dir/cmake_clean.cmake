file(REMOVE_RECURSE
  "CMakeFiles/fig3_10_reductions.dir/fig3_10_reductions.cpp.o"
  "CMakeFiles/fig3_10_reductions.dir/fig3_10_reductions.cpp.o.d"
  "fig3_10_reductions"
  "fig3_10_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_10_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
