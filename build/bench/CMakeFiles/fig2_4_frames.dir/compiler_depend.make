# Empty compiler generated dependencies file for fig2_4_frames.
# This may be replaced when dependencies are built.
