file(REMOVE_RECURSE
  "CMakeFiles/fig2_4_frames.dir/fig2_4_frames.cpp.o"
  "CMakeFiles/fig2_4_frames.dir/fig2_4_frames.cpp.o.d"
  "fig2_4_frames"
  "fig2_4_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_4_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
