# Empty compiler generated dependencies file for ext_channels.
# This may be replaced when dependencies are built.
