file(REMOVE_RECURSE
  "CMakeFiles/ext_channels.dir/ext_channels.cpp.o"
  "CMakeFiles/ext_channels.dir/ext_channels.cpp.o.d"
  "ext_channels"
  "ext_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
