file(REMOVE_RECURSE
  "CMakeFiles/fig3_7_borders.dir/fig3_7_borders.cpp.o"
  "CMakeFiles/fig3_7_borders.dir/fig3_7_borders.cpp.o.d"
  "fig3_7_borders"
  "fig3_7_borders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_7_borders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
