# Empty dependencies file for fig3_7_borders.
# This may be replaced when dependencies are built.
