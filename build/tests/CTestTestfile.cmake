# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/vp_test[1]_include.cmake")
include("/root/repo/build/tests/pcn_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/array_manager_test[1]_include.cmake")
include("/root/repo/build/tests/spmd_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/fft_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/qr_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/dp_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/halo_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/handle_test[1]_include.cmake")
include("/root/repo/build/tests/signal_test[1]_include.cmake")
