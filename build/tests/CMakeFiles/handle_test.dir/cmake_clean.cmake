file(REMOVE_RECURSE
  "CMakeFiles/handle_test.dir/handle_test.cpp.o"
  "CMakeFiles/handle_test.dir/handle_test.cpp.o.d"
  "handle_test"
  "handle_test.pdb"
  "handle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
