file(REMOVE_RECURSE
  "CMakeFiles/pcn_test.dir/pcn_test.cpp.o"
  "CMakeFiles/pcn_test.dir/pcn_test.cpp.o.d"
  "pcn_test"
  "pcn_test.pdb"
  "pcn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
