# Empty dependencies file for pcn_test.
# This may be replaced when dependencies are built.
