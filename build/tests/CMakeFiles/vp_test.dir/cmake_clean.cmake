file(REMOVE_RECURSE
  "CMakeFiles/vp_test.dir/vp_test.cpp.o"
  "CMakeFiles/vp_test.dir/vp_test.cpp.o.d"
  "vp_test"
  "vp_test.pdb"
  "vp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
