# Empty dependencies file for vp_test.
# This may be replaced when dependencies are built.
