file(REMOVE_RECURSE
  "CMakeFiles/array_manager_test.dir/array_manager_test.cpp.o"
  "CMakeFiles/array_manager_test.dir/array_manager_test.cpp.o.d"
  "array_manager_test"
  "array_manager_test.pdb"
  "array_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
