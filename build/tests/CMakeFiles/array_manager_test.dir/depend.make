# Empty dependencies file for array_manager_test.
# This may be replaced when dependencies are built.
