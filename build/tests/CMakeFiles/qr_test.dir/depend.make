# Empty dependencies file for qr_test.
# This may be replaced when dependencies are built.
