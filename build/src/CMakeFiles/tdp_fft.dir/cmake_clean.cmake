file(REMOVE_RECURSE
  "CMakeFiles/tdp_fft.dir/fft/fft.cpp.o"
  "CMakeFiles/tdp_fft.dir/fft/fft.cpp.o.d"
  "CMakeFiles/tdp_fft.dir/fft/reference.cpp.o"
  "CMakeFiles/tdp_fft.dir/fft/reference.cpp.o.d"
  "CMakeFiles/tdp_fft.dir/fft/roots.cpp.o"
  "CMakeFiles/tdp_fft.dir/fft/roots.cpp.o.d"
  "CMakeFiles/tdp_fft.dir/fft/signal.cpp.o"
  "CMakeFiles/tdp_fft.dir/fft/signal.cpp.o.d"
  "libtdp_fft.a"
  "libtdp_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
