file(REMOVE_RECURSE
  "libtdp_fft.a"
)
