# Empty compiler generated dependencies file for tdp_fft.
# This may be replaced when dependencies are built.
