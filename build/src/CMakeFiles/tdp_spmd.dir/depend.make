# Empty dependencies file for tdp_spmd.
# This may be replaced when dependencies are built.
