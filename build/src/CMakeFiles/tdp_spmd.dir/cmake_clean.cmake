file(REMOVE_RECURSE
  "CMakeFiles/tdp_spmd.dir/spmd/context.cpp.o"
  "CMakeFiles/tdp_spmd.dir/spmd/context.cpp.o.d"
  "libtdp_spmd.a"
  "libtdp_spmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_spmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
