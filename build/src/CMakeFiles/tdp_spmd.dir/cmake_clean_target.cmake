file(REMOVE_RECURSE
  "libtdp_spmd.a"
)
