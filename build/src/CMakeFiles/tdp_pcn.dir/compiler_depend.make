# Empty compiler generated dependencies file for tdp_pcn.
# This may be replaced when dependencies are built.
