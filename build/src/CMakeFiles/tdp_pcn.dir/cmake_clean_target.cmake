file(REMOVE_RECURSE
  "libtdp_pcn.a"
)
