file(REMOVE_RECURSE
  "CMakeFiles/tdp_pcn.dir/pcn/process.cpp.o"
  "CMakeFiles/tdp_pcn.dir/pcn/process.cpp.o.d"
  "libtdp_pcn.a"
  "libtdp_pcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_pcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
