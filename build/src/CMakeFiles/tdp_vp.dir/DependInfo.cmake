
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vp/machine.cpp" "src/CMakeFiles/tdp_vp.dir/vp/machine.cpp.o" "gcc" "src/CMakeFiles/tdp_vp.dir/vp/machine.cpp.o.d"
  "/root/repo/src/vp/mailbox.cpp" "src/CMakeFiles/tdp_vp.dir/vp/mailbox.cpp.o" "gcc" "src/CMakeFiles/tdp_vp.dir/vp/mailbox.cpp.o.d"
  "/root/repo/src/vp/server.cpp" "src/CMakeFiles/tdp_vp.dir/vp/server.cpp.o" "gcc" "src/CMakeFiles/tdp_vp.dir/vp/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
