file(REMOVE_RECURSE
  "CMakeFiles/tdp_vp.dir/vp/machine.cpp.o"
  "CMakeFiles/tdp_vp.dir/vp/machine.cpp.o.d"
  "CMakeFiles/tdp_vp.dir/vp/mailbox.cpp.o"
  "CMakeFiles/tdp_vp.dir/vp/mailbox.cpp.o.d"
  "CMakeFiles/tdp_vp.dir/vp/server.cpp.o"
  "CMakeFiles/tdp_vp.dir/vp/server.cpp.o.d"
  "libtdp_vp.a"
  "libtdp_vp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_vp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
