# Empty dependencies file for tdp_vp.
# This may be replaced when dependencies are built.
