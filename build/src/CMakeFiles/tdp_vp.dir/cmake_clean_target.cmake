file(REMOVE_RECURSE
  "libtdp_vp.a"
)
