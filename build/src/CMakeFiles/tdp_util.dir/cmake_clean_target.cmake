file(REMOVE_RECURSE
  "libtdp_util.a"
)
