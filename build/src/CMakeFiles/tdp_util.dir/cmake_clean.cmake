file(REMOVE_RECURSE
  "CMakeFiles/tdp_util.dir/util/atomic_print.cpp.o"
  "CMakeFiles/tdp_util.dir/util/atomic_print.cpp.o.d"
  "CMakeFiles/tdp_util.dir/util/bits.cpp.o"
  "CMakeFiles/tdp_util.dir/util/bits.cpp.o.d"
  "CMakeFiles/tdp_util.dir/util/node_array.cpp.o"
  "CMakeFiles/tdp_util.dir/util/node_array.cpp.o.d"
  "CMakeFiles/tdp_util.dir/util/status.cpp.o"
  "CMakeFiles/tdp_util.dir/util/status.cpp.o.d"
  "libtdp_util.a"
  "libtdp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
