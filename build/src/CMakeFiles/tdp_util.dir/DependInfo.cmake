
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/atomic_print.cpp" "src/CMakeFiles/tdp_util.dir/util/atomic_print.cpp.o" "gcc" "src/CMakeFiles/tdp_util.dir/util/atomic_print.cpp.o.d"
  "/root/repo/src/util/bits.cpp" "src/CMakeFiles/tdp_util.dir/util/bits.cpp.o" "gcc" "src/CMakeFiles/tdp_util.dir/util/bits.cpp.o.d"
  "/root/repo/src/util/node_array.cpp" "src/CMakeFiles/tdp_util.dir/util/node_array.cpp.o" "gcc" "src/CMakeFiles/tdp_util.dir/util/node_array.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/CMakeFiles/tdp_util.dir/util/status.cpp.o" "gcc" "src/CMakeFiles/tdp_util.dir/util/status.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
