
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apply.cpp" "src/CMakeFiles/tdp_core.dir/core/apply.cpp.o" "gcc" "src/CMakeFiles/tdp_core.dir/core/apply.cpp.o.d"
  "/root/repo/src/core/array_handle.cpp" "src/CMakeFiles/tdp_core.dir/core/array_handle.cpp.o" "gcc" "src/CMakeFiles/tdp_core.dir/core/array_handle.cpp.o.d"
  "/root/repo/src/core/call_args.cpp" "src/CMakeFiles/tdp_core.dir/core/call_args.cpp.o" "gcc" "src/CMakeFiles/tdp_core.dir/core/call_args.cpp.o.d"
  "/root/repo/src/core/channels.cpp" "src/CMakeFiles/tdp_core.dir/core/channels.cpp.o" "gcc" "src/CMakeFiles/tdp_core.dir/core/channels.cpp.o.d"
  "/root/repo/src/core/distributed_call.cpp" "src/CMakeFiles/tdp_core.dir/core/distributed_call.cpp.o" "gcc" "src/CMakeFiles/tdp_core.dir/core/distributed_call.cpp.o.d"
  "/root/repo/src/core/do_all.cpp" "src/CMakeFiles/tdp_core.dir/core/do_all.cpp.o" "gcc" "src/CMakeFiles/tdp_core.dir/core/do_all.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/tdp_core.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/tdp_core.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/CMakeFiles/tdp_core.dir/core/runtime.cpp.o" "gcc" "src/CMakeFiles/tdp_core.dir/core/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdp_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_spmd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_pcn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
