file(REMOVE_RECURSE
  "CMakeFiles/tdp_core.dir/core/apply.cpp.o"
  "CMakeFiles/tdp_core.dir/core/apply.cpp.o.d"
  "CMakeFiles/tdp_core.dir/core/array_handle.cpp.o"
  "CMakeFiles/tdp_core.dir/core/array_handle.cpp.o.d"
  "CMakeFiles/tdp_core.dir/core/call_args.cpp.o"
  "CMakeFiles/tdp_core.dir/core/call_args.cpp.o.d"
  "CMakeFiles/tdp_core.dir/core/channels.cpp.o"
  "CMakeFiles/tdp_core.dir/core/channels.cpp.o.d"
  "CMakeFiles/tdp_core.dir/core/distributed_call.cpp.o"
  "CMakeFiles/tdp_core.dir/core/distributed_call.cpp.o.d"
  "CMakeFiles/tdp_core.dir/core/do_all.cpp.o"
  "CMakeFiles/tdp_core.dir/core/do_all.cpp.o.d"
  "CMakeFiles/tdp_core.dir/core/registry.cpp.o"
  "CMakeFiles/tdp_core.dir/core/registry.cpp.o.d"
  "CMakeFiles/tdp_core.dir/core/runtime.cpp.o"
  "CMakeFiles/tdp_core.dir/core/runtime.cpp.o.d"
  "libtdp_core.a"
  "libtdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
