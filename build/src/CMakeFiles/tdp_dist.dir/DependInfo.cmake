
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/array_manager.cpp" "src/CMakeFiles/tdp_dist.dir/dist/array_manager.cpp.o" "gcc" "src/CMakeFiles/tdp_dist.dir/dist/array_manager.cpp.o.d"
  "/root/repo/src/dist/array_server.cpp" "src/CMakeFiles/tdp_dist.dir/dist/array_server.cpp.o" "gcc" "src/CMakeFiles/tdp_dist.dir/dist/array_server.cpp.o.d"
  "/root/repo/src/dist/layout.cpp" "src/CMakeFiles/tdp_dist.dir/dist/layout.cpp.o" "gcc" "src/CMakeFiles/tdp_dist.dir/dist/layout.cpp.o.d"
  "/root/repo/src/dist/spec_parse.cpp" "src/CMakeFiles/tdp_dist.dir/dist/spec_parse.cpp.o" "gcc" "src/CMakeFiles/tdp_dist.dir/dist/spec_parse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdp_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
