file(REMOVE_RECURSE
  "libtdp_dist.a"
)
