# Empty compiler generated dependencies file for tdp_dist.
# This may be replaced when dependencies are built.
