file(REMOVE_RECURSE
  "CMakeFiles/tdp_dist.dir/dist/array_manager.cpp.o"
  "CMakeFiles/tdp_dist.dir/dist/array_manager.cpp.o.d"
  "CMakeFiles/tdp_dist.dir/dist/array_server.cpp.o"
  "CMakeFiles/tdp_dist.dir/dist/array_server.cpp.o.d"
  "CMakeFiles/tdp_dist.dir/dist/layout.cpp.o"
  "CMakeFiles/tdp_dist.dir/dist/layout.cpp.o.d"
  "CMakeFiles/tdp_dist.dir/dist/spec_parse.cpp.o"
  "CMakeFiles/tdp_dist.dir/dist/spec_parse.cpp.o.d"
  "libtdp_dist.a"
  "libtdp_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
