# Empty dependencies file for tdp_dp.
# This may be replaced when dependencies are built.
