file(REMOVE_RECURSE
  "CMakeFiles/tdp_dp.dir/dp/forall.cpp.o"
  "CMakeFiles/tdp_dp.dir/dp/forall.cpp.o.d"
  "libtdp_dp.a"
  "libtdp_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
