file(REMOVE_RECURSE
  "libtdp_dp.a"
)
