file(REMOVE_RECURSE
  "CMakeFiles/tdp_linalg.dir/linalg/halo.cpp.o"
  "CMakeFiles/tdp_linalg.dir/linalg/halo.cpp.o.d"
  "CMakeFiles/tdp_linalg.dir/linalg/iterative.cpp.o"
  "CMakeFiles/tdp_linalg.dir/linalg/iterative.cpp.o.d"
  "CMakeFiles/tdp_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/tdp_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/tdp_linalg.dir/linalg/matrix_ops.cpp.o"
  "CMakeFiles/tdp_linalg.dir/linalg/matrix_ops.cpp.o.d"
  "CMakeFiles/tdp_linalg.dir/linalg/qr.cpp.o"
  "CMakeFiles/tdp_linalg.dir/linalg/qr.cpp.o.d"
  "CMakeFiles/tdp_linalg.dir/linalg/stencil.cpp.o"
  "CMakeFiles/tdp_linalg.dir/linalg/stencil.cpp.o.d"
  "CMakeFiles/tdp_linalg.dir/linalg/vector_ops.cpp.o"
  "CMakeFiles/tdp_linalg.dir/linalg/vector_ops.cpp.o.d"
  "libtdp_linalg.a"
  "libtdp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
