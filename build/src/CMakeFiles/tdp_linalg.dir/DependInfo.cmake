
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/halo.cpp" "src/CMakeFiles/tdp_linalg.dir/linalg/halo.cpp.o" "gcc" "src/CMakeFiles/tdp_linalg.dir/linalg/halo.cpp.o.d"
  "/root/repo/src/linalg/iterative.cpp" "src/CMakeFiles/tdp_linalg.dir/linalg/iterative.cpp.o" "gcc" "src/CMakeFiles/tdp_linalg.dir/linalg/iterative.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/tdp_linalg.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/tdp_linalg.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/linalg/matrix_ops.cpp" "src/CMakeFiles/tdp_linalg.dir/linalg/matrix_ops.cpp.o" "gcc" "src/CMakeFiles/tdp_linalg.dir/linalg/matrix_ops.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/CMakeFiles/tdp_linalg.dir/linalg/qr.cpp.o" "gcc" "src/CMakeFiles/tdp_linalg.dir/linalg/qr.cpp.o.d"
  "/root/repo/src/linalg/stencil.cpp" "src/CMakeFiles/tdp_linalg.dir/linalg/stencil.cpp.o" "gcc" "src/CMakeFiles/tdp_linalg.dir/linalg/stencil.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/CMakeFiles/tdp_linalg.dir/linalg/vector_ops.cpp.o" "gcc" "src/CMakeFiles/tdp_linalg.dir/linalg/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdp_spmd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_pcn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
