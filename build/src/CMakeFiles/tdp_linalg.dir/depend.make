# Empty dependencies file for tdp_linalg.
# This may be replaced when dependencies are built.
