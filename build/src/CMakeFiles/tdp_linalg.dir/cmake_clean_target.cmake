file(REMOVE_RECURSE
  "libtdp_linalg.a"
)
