# Empty dependencies file for animation.
# This may be replaced when dependencies are built.
