file(REMOVE_RECURSE
  "CMakeFiles/wave.dir/wave.cpp.o"
  "CMakeFiles/wave.dir/wave.cpp.o.d"
  "wave"
  "wave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
