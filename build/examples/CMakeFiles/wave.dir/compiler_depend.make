# Empty compiler generated dependencies file for wave.
# This may be replaced when dependencies are built.
