# Empty dependencies file for climate.
# This may be replaced when dependencies are built.
