file(REMOVE_RECURSE
  "CMakeFiles/climate.dir/climate.cpp.o"
  "CMakeFiles/climate.dir/climate.cpp.o.d"
  "climate"
  "climate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
