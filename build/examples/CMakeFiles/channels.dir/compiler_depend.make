# Empty compiler generated dependencies file for channels.
# This may be replaced when dependencies are built.
