file(REMOVE_RECURSE
  "CMakeFiles/channels.dir/channels.cpp.o"
  "CMakeFiles/channels.dir/channels.cpp.o.d"
  "channels"
  "channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
