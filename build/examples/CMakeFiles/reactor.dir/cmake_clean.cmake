file(REMOVE_RECURSE
  "CMakeFiles/reactor.dir/reactor.cpp.o"
  "CMakeFiles/reactor.dir/reactor.cpp.o.d"
  "reactor"
  "reactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
