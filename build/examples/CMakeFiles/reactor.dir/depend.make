# Empty dependencies file for reactor.
# This may be replaced when dependencies are built.
