
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/reactor.cpp" "examples/CMakeFiles/reactor.dir/reactor.cpp.o" "gcc" "examples/CMakeFiles/reactor.dir/reactor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdp_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_pcn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_spmd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tdp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
