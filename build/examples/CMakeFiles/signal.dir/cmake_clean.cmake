file(REMOVE_RECURSE
  "CMakeFiles/signal.dir/signal.cpp.o"
  "CMakeFiles/signal.dir/signal.cpp.o.d"
  "signal"
  "signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
