# Empty dependencies file for signal.
# This may be replaced when dependencies are built.
