// Discrete-event simulation of a reactor system (thesis §2.3.3, fig 2.3).
//
// A reactive computation: a graph of components — pump, valve, reactor,
// controller — communicating by events under a task-parallel top level.
// The reactor's thermal model is "suitably computationally intensive": each
// flow event triggers a data-parallel Jacobi relaxation on the reactor's
// block-distributed temperature field via a distributed call on the
// reactor's processor group.
#include <cstdlib>

#include "core/runtime.hpp"
#include "linalg/stencil.hpp"
#include "sim/event_sim.hpp"
#include "util/atomic_print.hpp"
#include "util/node_array.hpp"

namespace {
// Event kinds flowing through the graph.
constexpr int kFlow = 1;         // pump -> valve -> reactor: coolant slug
constexpr int kTemperature = 2;  // reactor -> controller: core reading
constexpr int kSetRate = 3;      // controller -> pump: new pump rate
}  // namespace

int main() {
  using namespace tdp;
  const int group = 4;  // reactor model processors
  const int n = 16;     // reactor core grid (n x n)
  core::Runtime rt(group);
  linalg::register_stencil_programs(rt.programs());

  // The reactor core: a 2-D field, rows distributed, halo rows from the
  // model's own border routine.
  dist::ArrayId core_field;
  rt.arrays().create_array(0, dist::ElemType::Float64, {n, n},
                           rt.all_procs(),
                           {dist::DimSpec::block(), dist::DimSpec::star()},
                           dist::BorderSpec::foreign("jacobi_step_2d", 1),
                           dist::Indexing::RowMajor, core_field);
  // Hot top edge (the fuel assembly), cool elsewhere.
  for (int j = 0; j < n; ++j) {
    rt.arrays().write_element(0, core_field, std::vector<int>{0, j},
                              dist::Scalar{900.0});
  }

  sim::EventSimulation des;
  double pump_rate = 1.0;  // coolant slugs per time unit
  int slugs_pumped = 0;
  int relaxations = 0;
  std::vector<double> temperature_trace;

  const int pump = des.add_component(
      "pump", [&](double now, const std::vector<sim::Event>&) {
        std::vector<sim::Event> out;
        sim::Event slug;
        slug.time = now;
        slug.kind = kFlow;
        slug.payload = {pump_rate};
        out.push_back(slug);
        ++slugs_pumped;
        sim::Event wake;
        wake.time = now + 1.0 / pump_rate;
        wake.kind = sim::kSelfWake;
        out.push_back(wake);
        return out;
      });

  const int valve = des.add_component(
      "valve",
      [&](double now, const std::vector<sim::Event>& in) {
        // The valve passes flow through with a small transport delay.
        std::vector<sim::Event> out;
        for (const sim::Event& e : in) {
          if (e.kind != kFlow) continue;
          sim::Event passed = e;
          passed.time = now + 0.1;
          out.push_back(passed);
        }
        return out;
      },
      /*first_wake=*/-1.0);

  const int reactor = des.add_component(
      "reactor",
      [&](double, const std::vector<sim::Event>& in) {
        std::vector<sim::Event> out;
        for (const sim::Event& e : in) {
          if (e.kind != kFlow) continue;
          // Each coolant slug relaxes the core: a data-parallel Jacobi
          // sweep on the reactor's processor group (fig 2.3: the component
          // is itself a data-parallel program).
          std::vector<double> residual;
          rt.call(rt.all_procs(), "jacobi_step_2d")
              .constant(3)
              .local(core_field)
              .reduce_f64(1, core::f64_max(), &residual)
              .run();
          ++relaxations;
          dist::Scalar mid;
          rt.arrays().read_element(0, core_field,
                                   std::vector<int>{n / 2, n / 2}, mid);
          sim::Event reading;
          reading.time = e.time;
          reading.kind = kTemperature;
          reading.payload = {dist::scalar_to_double(mid), residual.at(0)};
          out.push_back(reading);
        }
        return out;
      },
      -1.0);

  const int controller = des.add_component(
      "controller",
      [&](double now, const std::vector<sim::Event>& in) {
        std::vector<sim::Event> out;
        for (const sim::Event& e : in) {
          if (e.kind != kTemperature) continue;
          const double core_t = e.payload.at(0);
          temperature_trace.push_back(core_t);
          // Speed the pump up while the core heats, slow it when cool.
          const double target = core_t > 200.0 ? 4.0 : 1.0;
          if (target != pump_rate) {
            sim::Event cmd;
            cmd.time = now;
            cmd.kind = kSetRate;
            cmd.payload = {target};
            out.push_back(cmd);
          }
        }
        return out;
      },
      -1.0);

  // Close the loop: the controller's rate commands reach the pump through
  // a dedicated actuator component feeding the shared rate variable.
  const int actuator = des.add_component(
      "actuator",
      [&](double, const std::vector<sim::Event>& in) {
        for (const sim::Event& e : in) {
          if (e.kind == kSetRate) pump_rate = e.payload.at(0);
        }
        return std::vector<sim::Event>{};
      },
      -1.0);

  des.connect(pump, valve);
  des.connect(valve, reactor);
  des.connect(reactor, controller);
  des.connect(controller, actuator);

  util::atomic_print("reactor DES: pump -> valve -> reactor -> controller");
  const auto stats = des.run(20.0);
  util::atomic_print_items("virtual time ", stats.end_time, ", ",
                           stats.events_delivered, " events, ", slugs_pumped,
                           " slugs, ", relaxations,
                           " data-parallel relaxations");
  util::atomic_print_items("core mid temperature after run: ",
                           temperature_trace.empty()
                               ? -1.0
                               : temperature_trace.back());

  const bool sane = relaxations > 0 && !temperature_trace.empty() &&
                    temperature_trace.back() > 0.0 &&
                    temperature_trace.back() < 900.0;
  rt.arrays().free_array(0, core_field);
  util::atomic_print(sane ? "reactor simulation completed"
                          : "UNEXPECTED simulation state");
  return sane ? EXIT_SUCCESS : EXIT_FAILURE;
}
