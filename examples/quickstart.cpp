// Quickstart: the thesis's inner-product example (§6.1).
//
// A task-parallel top level
//   1. creates two block-distributed vectors,
//   2. makes one distributed call to the data-parallel program test_iprdv,
//      which initialises both vectors to v[i] = i+1 and computes their
//      inner product (returned through a reduction variable), and
//   3. prints the result and frees the vectors.
//
// Mirrors the PCN program of §6.1.2 line for line where C++ allows.
#include <cstdlib>

#include "core/runtime.hpp"
#include "linalg/vector_ops.hpp"
#include "util/atomic_print.hpp"

int main() {
  using namespace tdp;
  util::atomic_print("starting test");

  // Start the runtime ("load the array manager on all processors", §B.3).
  core::Runtime rt(8);
  linalg::register_programs(rt.programs());

  // Define constants: P processors, Local_m elements per processor.
  const int p = rt.nprocs();
  const int local_m = 4;
  const int m = p * local_m;
  const std::vector<int> processors = rt.all_procs();

  // Create the distributed vectors.
  dist::ArrayId vector1;
  dist::ArrayId vector2;
  for (dist::ArrayId* id : {&vector1, &vector2}) {
    Status st = rt.arrays().create_array(
        0, dist::ElemType::Float64, {m}, processors, {dist::DimSpec::block()},
        dist::BorderSpec::none(), dist::Indexing::RowMajor, *id);
    if (!ok(st)) {
      util::atomic_print_items("create_array failed: ", to_string(st));
      return EXIT_FAILURE;
    }
  }

  // Call data-parallel program test_iprdv once per processor (§6.1.2):
  // parameters are Procs, P, "index", M, Local_m, local(V1), local(V2),
  // reduce("double", 1, max, InProd).
  std::vector<double> inprod;
  const int status = rt.call(processors, "test_iprdv")
                         .constant(processors)
                         .constant(p)
                         .index()
                         .constant(m)
                         .constant(local_m)
                         .local(vector1)
                         .local(vector2)
                         .reduce_f64(1, core::f64_max(), &inprod)
                         .run();
  if (status != kStatusOk) {
    util::atomic_print_items("distributed call failed with status ", status);
    return EXIT_FAILURE;
  }

  // Print the result; with v[i] = i+1 the expected value is sum_{1..M} i^2.
  double expect = 0.0;
  for (int i = 1; i <= m; ++i) expect += static_cast<double>(i) * i;
  util::atomic_print_items("inner product: ", inprod.at(0),
                           "   (expected ", expect, ")");

  // Free the vectors.
  rt.arrays().free_array(0, vector1);
  rt.arrays().free_array(0, vector2);
  util::atomic_print("ending test");
  return inprod.at(0) == expect ? EXIT_SUCCESS : EXIT_FAILURE;
}
