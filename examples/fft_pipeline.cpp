// Polynomial multiplication using a pipeline and FFT — the thesis's main
// example (§6.2, figures 2.2 and 6.1).
//
// Input: a sequence of pairs of polynomials (F_j, G_j) of degree n-1.
// Output: the products H_j = F_j * G_j of degree 2n-2.  Per §6.2.1:
//   1. pad each polynomial to length 2n and evaluate it at the 2n-th roots
//      of unity — an *inverse* FFT (bit-reversed input, natural output);
//   2. multiply the two evaluation vectors elementwise;
//   3. fit the product polynomial — a *forward* FFT (natural input,
//      bit-reversed output) including the division by 2n.
//
// The three steps form a pipeline of concurrently-executing stages, each a
// data-parallel program on its own processor group; the two inverse FFTs of
// a pair run concurrently (fig 6.1).  Stages are task-parallel processes
// connected by definitional streams, exactly the thesis's program shape.
#include <cmath>
#include <cstdlib>
#include <random>

#include "core/runtime.hpp"
#include "fft/fft.hpp"
#include "fft/reference.hpp"
#include "pcn/process.hpp"
#include "pcn/stream.hpp"
#include "util/atomic_print.hpp"
#include "util/bits.hpp"
#include "util/node_array.hpp"

namespace {

using tdp::dist::ArrayId;
using tdp::dist::Scalar;
using Dataset = std::vector<double>;  // interleaved complex, 2*NN doubles

/// get_input + pad_input (§6.2.2): writes the N real coefficients into the
/// length-2N complex distributed array in bit-reversed positions and pads
/// the upper half with zeros.
void load_bit_reversed(tdp::core::Runtime& rt, ArrayId array, int nn,
                       const std::vector<double>& coeffs) {
  const int bits = tdp::util::floor_log2(nn);
  for (int j = 0; j < nn; ++j) {
    const auto pos = static_cast<int>(tdp::util::bit_reverse(
        bits, static_cast<std::uint64_t>(j)));
    const double re =
        j < static_cast<int>(coeffs.size()) ? coeffs[static_cast<std::size_t>(j)] : 0.0;
    rt.arrays().write_element(0, array, std::vector<int>{2 * pos},
                              Scalar{re});
    rt.arrays().write_element(0, array, std::vector<int>{2 * pos + 1},
                              Scalar{0.0});
  }
}

/// Reads the whole array in storage order (2*NN doubles).
Dataset read_storage(tdp::core::Runtime& rt, ArrayId array, int nn) {
  Dataset out(static_cast<std::size_t>(2 * nn));
  for (int s = 0; s < 2 * nn; ++s) {
    Scalar v;
    rt.arrays().read_element(0, array, std::vector<int>{s}, v);
    out[static_cast<std::size_t>(s)] = tdp::dist::scalar_to_double(v);
  }
  return out;
}

/// Writes a dataset into the array in storage order.
void write_storage(tdp::core::Runtime& rt, ArrayId array,
                   const Dataset& data) {
  for (int s = 0; s < static_cast<int>(data.size()); ++s) {
    rt.arrays().write_element(0, array, std::vector<int>{s},
                              Scalar{data[static_cast<std::size_t>(s)]});
  }
}

/// put_output (§6.2.2): reads the bit-reversed result into natural order.
Dataset read_bit_reversed(tdp::core::Runtime& rt, ArrayId array, int nn) {
  const int bits = tdp::util::floor_log2(nn);
  Dataset out(static_cast<std::size_t>(2 * nn));
  for (int j = 0; j < nn; ++j) {
    const auto pos = static_cast<int>(tdp::util::bit_reverse(
        bits, static_cast<std::uint64_t>(j)));
    Scalar re;
    Scalar im;
    rt.arrays().read_element(0, array, std::vector<int>{2 * pos}, re);
    rt.arrays().read_element(0, array, std::vector<int>{2 * pos + 1}, im);
    out[static_cast<std::size_t>(2 * j)] = tdp::dist::scalar_to_double(re);
    out[static_cast<std::size_t>(2 * j + 1)] = tdp::dist::scalar_to_double(im);
  }
  return out;
}

/// phase1 (§6.2.2): inverse FFT stage.  Consumes polynomials (N real
/// coefficients), produces their evaluations at the 2N roots of unity.
void phase1(tdp::core::Runtime& rt, const std::vector<int>& procs, int nn,
            ArrayId array, ArrayId eps, tdp::pcn::Stream<Dataset> in,
            tdp::pcn::Stream<Dataset> out) {
  for (std::optional<Dataset> poly; (poly = in.next());) {
    load_bit_reversed(rt, array, nn, *poly);
    rt.call(procs, "fft_reverse")
        .constant(procs)
        .constant(static_cast<int>(procs.size()))
        .index()
        .constant(nn)
        .constant(tdp::fft::kInverse)
        .local(eps)
        .local(array)
        .run();
    out = out.put(read_storage(rt, array, nn));
  }
  out.close();
}

/// combine (§6.2.2): elementwise complex product of two evaluation streams.
void combine(tdp::pcn::Stream<Dataset> in_a, tdp::pcn::Stream<Dataset> in_b,
             tdp::pcn::Stream<Dataset> out) {
  for (;;) {
    std::optional<Dataset> a = in_a.next();
    std::optional<Dataset> b = in_b.next();
    if (!a || !b) break;
    Dataset prod(a->size());
    for (std::size_t j = 0; j + 1 < prod.size(); j += 2) {
      const double re1 = (*a)[j];
      const double im1 = (*a)[j + 1];
      const double re2 = (*b)[j];
      const double im2 = (*b)[j + 1];
      prod[j] = re1 * re2 - im1 * im2;
      prod[j + 1] = re2 * im1 + re1 * im2;
    }
    out = out.put(std::move(prod));
  }
  out.close();
}

/// phase2 (§6.2.2): forward FFT stage.  Consumes evaluation vectors,
/// produces product-polynomial coefficients (natural order, complex).
void phase2(tdp::core::Runtime& rt, const std::vector<int>& procs, int nn,
            ArrayId array, ArrayId eps, tdp::pcn::Stream<Dataset> in,
            tdp::pcn::Stream<Dataset> out) {
  for (std::optional<Dataset> values; (values = in.next());) {
    write_storage(rt, array, *values);
    rt.call(procs, "fft_natural")
        .constant(procs)
        .constant(static_cast<int>(procs.size()))
        .index()
        .constant(nn)
        .constant(tdp::fft::kForward)
        .local(eps)
        .local(array)
        .run();
    out = out.put(read_bit_reversed(rt, array, nn));
  }
  out.close();
}

ArrayId make_data_array(tdp::core::Runtime& rt, int nn,
                        const std::vector<int>& procs) {
  ArrayId id;
  rt.arrays().create_array(0, tdp::dist::ElemType::Float64, {2 * nn}, procs,
                           {tdp::dist::DimSpec::block()},
                           tdp::dist::BorderSpec::none(),
                           tdp::dist::Indexing::RowMajor, id);
  return id;
}

ArrayId make_roots_array(tdp::core::Runtime& rt, int nn,
                         const std::vector<int>& procs) {
  // Eps dims (2*NN, P) distributed ("*", block): each copy holds the full
  // table of NN roots (§6.2.2).
  ArrayId id;
  rt.arrays().create_array(
      0, tdp::dist::ElemType::Float64,
      {2 * nn, static_cast<int>(procs.size())}, procs,
      {tdp::dist::DimSpec::star(), tdp::dist::DimSpec::block()},
      tdp::dist::BorderSpec::none(), tdp::dist::Indexing::ColumnMajor, id);
  rt.call(procs, "compute_roots").constant(nn).local(id).run();
  return id;
}

}  // namespace

int main() {
  using namespace tdp;
  const int n = 32;        // input polynomial size (power of two)
  const int nn = 2 * n;    // transform size
  const int group = 4;     // processors per pipeline stage
  const int num_pairs = 6;

  core::Runtime rt(3 * group);
  fft::register_programs(rt.programs());

  // Three processor groups: the two concurrent inverse-FFT stages and the
  // forward-FFT stage (fig 6.1); the combine stage is task-parallel.
  const std::vector<int> procs1a = util::node_array(0, 1, group);
  const std::vector<int> procs1b = util::node_array(group, 1, group);
  const std::vector<int> procs2 = util::node_array(2 * group, 1, group);

  ArrayId a1a = make_data_array(rt, nn, procs1a);
  ArrayId a1b = make_data_array(rt, nn, procs1b);
  ArrayId a2 = make_data_array(rt, nn, procs2);
  ArrayId eps1a = make_roots_array(rt, nn, procs1a);
  ArrayId eps1b = make_roots_array(rt, nn, procs1b);
  ArrayId eps2 = make_roots_array(rt, nn, procs2);

  // Generate the input pairs.
  std::mt19937 rng(2026);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::pair<Dataset, Dataset>> pairs;
  for (int k = 0; k < num_pairs; ++k) {
    Dataset f(static_cast<std::size_t>(n));
    Dataset g(static_cast<std::size_t>(n));
    for (auto& v : f) v = dist(rng);
    for (auto& v : g) v = dist(rng);
    pairs.emplace_back(std::move(f), std::move(g));
  }

  // Streams wiring the pipeline: inputs, evaluations, products.
  pcn::Stream<Dataset> in_a;
  pcn::Stream<Dataset> in_b;
  pcn::Stream<Dataset> eval_a;
  pcn::Stream<Dataset> eval_b;
  pcn::Stream<Dataset> product_values;
  pcn::Stream<Dataset> results;

  util::atomic_print_items("pipeline: ", num_pairs, " pairs of degree-",
                           n - 1, " polynomials on 3 groups of ", group,
                           " processors");

  int failures = 0;
  pcn::par(
      // read_infile: feed the two input streams.
      [&] {
        pcn::Stream<Dataset> ta = in_a;
        pcn::Stream<Dataset> tb = in_b;
        for (const auto& [f, g] : pairs) {
          ta = ta.put(f);
          tb = tb.put(g);
        }
        ta.close();
        tb.close();
      },
      [&] { phase1(rt, procs1a, nn, a1a, eps1a, in_a, eval_a); },
      [&] { phase1(rt, procs1b, nn, a1b, eps1b, in_b, eval_b); },
      [&] { combine(eval_a, eval_b, product_values); },
      [&] { phase2(rt, procs2, nn, a2, eps2, product_values, results); },
      // write_outfile: validate each product against naive convolution.
      [&] {
        pcn::Stream<Dataset> r = results;
        int k = 0;
        for (std::optional<Dataset> h; (h = r.next()); ++k) {
          const auto& [f, g] = pairs[static_cast<std::size_t>(k)];
          const std::vector<double> want = fft::poly_mul_naive(f, g);
          double max_err = 0.0;
          for (int j = 0; j < 2 * n - 1; ++j) {
            max_err = std::max(
                max_err, std::fabs((*h)[static_cast<std::size_t>(2 * j)] -
                                   want[static_cast<std::size_t>(j)]));
            max_err = std::max(
                max_err, std::fabs((*h)[static_cast<std::size_t>(2 * j + 1)]));
          }
          util::atomic_print_items("pair ", k, ": max coefficient error ",
                                   max_err);
          if (max_err > 1e-9) ++failures;
        }
      });

  for (ArrayId id : {a1a, a1b, a2, eps1a, eps1b, eps2}) {
    rt.arrays().free_array(0, id);
  }
  util::atomic_print(failures == 0 ? "all products correct"
                                   : "FAILURES detected");
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
