// Coupled climate simulation (thesis §2.3.1, figure 2.1).
//
// Two data-parallel simulations — an "ocean" and an "atmosphere", each a
// time-stepped heat model on its own block-distributed field and its own
// processor group — advance concurrently; at every coupling step the
// task-parallel top level exchanges boundary data between them.  This is
// the heterogeneous-domain-decomposition problem class: the programs never
// talk to each other directly; all inter-model traffic goes through the
// caller.
#include <cstdlib>

#include "core/runtime.hpp"
#include "linalg/stencil.hpp"
#include "pcn/process.hpp"
#include "util/atomic_print.hpp"
#include "util/node_array.hpp"

namespace {

using tdp::dist::ArrayId;
using tdp::dist::Scalar;

double read1(tdp::core::Runtime& rt, ArrayId id, int i) {
  Scalar v;
  rt.arrays().read_element(0, id, std::vector<int>{i}, v);
  return tdp::dist::scalar_to_double(v);
}

void write1(tdp::core::Runtime& rt, ArrayId id, int i, double v) {
  rt.arrays().write_element(0, id, std::vector<int>{i}, Scalar{v});
}

}  // namespace

int main() {
  using namespace tdp;
  const int group = 4;    // processors per simulation
  const int m = 64;       // grid cells per simulation
  const int inner = 10;   // data-parallel steps per coupling step
  const double alpha = 0.2;
  // TDP_CLIMATE_COUPLINGS stretches the run (CI points tdp_top at a live
  // instance, which needs the simulation to still be going when polled).
  int couplings = 30;
  if (const char* env = std::getenv("TDP_CLIMATE_COUPLINGS");
      env != nullptr && std::atoi(env) > 0) {
    couplings = std::atoi(env);
  }

  core::Runtime rt(2 * group);
  linalg::register_stencil_programs(rt.programs());

  const std::vector<int> ocean_procs = util::node_array(0, 1, group);
  const std::vector<int> atmos_procs = util::node_array(group, 1, group);

  // Each field carries the one-cell halo its stencil program expects; the
  // border sizes come from the program's border routine (foreign_borders).
  ArrayId ocean;
  ArrayId atmos;
  rt.arrays().create_array(0, dist::ElemType::Float64, {m}, ocean_procs,
                           {dist::DimSpec::block()},
                           dist::BorderSpec::foreign("heat_step_1d", 2),
                           dist::Indexing::RowMajor, ocean);
  rt.arrays().create_array(0, dist::ElemType::Float64, {m}, atmos_procs,
                           {dist::DimSpec::block()},
                           dist::BorderSpec::foreign("heat_step_1d", 2),
                           dist::Indexing::RowMajor, atmos);

  // Initial conditions: hot ocean interior, cold atmosphere.
  for (int i = 0; i < m; ++i) {
    write1(rt, ocean, i, 80.0);
    write1(rt, atmos, i, 10.0);
  }

  util::atomic_print_items("coupled climate: 2 models x ", group,
                           " processors, ", couplings,
                           " coupling steps of ", inner, " inner steps");

  for (int step = 0; step < couplings; ++step) {
    // Advance both simulations concurrently (fig 2.1: two data-parallel
    // programs under a task-parallel top level).
    pcn::par(
        [&] {
          rt.call(ocean_procs, "heat_step_1d")
              .constant(alpha)
              .constant(inner)
              .local(ocean)
              .status()
              .run();
        },
        [&] {
          rt.call(atmos_procs, "heat_step_1d")
              .constant(alpha)
              .constant(inner)
              .local(atmos)
              .status()
              .run();
        });

    // Exchange boundary data through the task-parallel level: the
    // ocean surface (its last cell) and the atmosphere base (its first
    // cell) relax toward each other.
    const double sea_surface = read1(rt, ocean, m - 1);
    const double air_base = read1(rt, atmos, 0);
    const double interface_t = 0.5 * (sea_surface + air_base);
    write1(rt, ocean, m - 1, interface_t);
    write1(rt, atmos, 0, interface_t);

    if (step % 10 == 9) {
      util::atomic_print_items("step ", step + 1, ": interface temperature ",
                               interface_t);
    }
  }

  // The interface must settle strictly between the initial extremes, with
  // ocean cooling from the top and atmosphere warming from below.
  const double final_interface = read1(rt, ocean, m - 1);
  const bool sane = final_interface > 10.0 && final_interface < 80.0 &&
                    read1(rt, atmos, 0) > 10.0 && read1(rt, ocean, 0) <= 80.0;
  util::atomic_print_items("final interface temperature: ", final_interface,
                           sane ? "  (coupled as expected)"
                                : "  (UNEXPECTED)");

  rt.arrays().free_array(0, ocean);
  rt.arrays().free_array(0, atmos);
  return sane ? EXIT_SUCCESS : EXIT_FAILURE;
}
