// A data-parallel program as a sequence of multiple-assignment statements
// (thesis §1.2.1), called from the task-parallel level.
//
// The 1-D wave equation with leapfrog time stepping:
//   u_next[i] = 2 u[i] - u_prev[i] + c^2 (u[i-1] - 2 u[i] + u[i+1])
// is exactly a multiple-assignment statement: every right-hand side must
// see the pre-statement field.  The example runs the simulation through
// dp::multiple_assign inside a distributed call, renders the travelling
// pulse as ASCII frames, and checks energy conservation — which breaks
// under the naive in-place evaluation the thesis warns about (§1.2.5).
#include <cmath>
#include <cstdlib>
#include <string>

#include "core/runtime.hpp"
#include "dp/forall.hpp"
#include "util/atomic_print.hpp"

namespace {

double field_energy(tdp::core::Runtime& rt, tdp::dist::ArrayId u, int n) {
  double e = 0.0;
  for (int i = 0; i < n; ++i) {
    tdp::dist::Scalar v;
    rt.arrays().read_element(0, u, std::vector<int>{i}, v);
    e += tdp::dist::scalar_to_double(v) * tdp::dist::scalar_to_double(v);
  }
  return e;
}

std::string render(tdp::core::Runtime& rt, tdp::dist::ArrayId u, int n) {
  static const char* kShades = " .:-=+*#%@";
  std::string line;
  for (int i = 0; i < n; ++i) {
    tdp::dist::Scalar v;
    rt.arrays().read_element(0, u, std::vector<int>{i}, v);
    const double a = std::min(1.0, std::fabs(tdp::dist::scalar_to_double(v)));
    line += kShades[static_cast<int>(a * 9.0)];
  }
  return line;
}

}  // namespace

int main() {
  using namespace tdp;
  const int p = 4;
  const int n = 64;
  const double c2 = 0.25;  // (c dt/dx)^2, stable for leapfrog
  const int steps = 48;

  core::Runtime rt(p);

  // The data-parallel wave program: `steps` leapfrog statements, each a
  // multiple-assignment over the pair (u_prev, u).  Both fields travel as
  // local sections; the statement snapshot comes from dp::multiple_assign.
  rt.programs().add("wave_leapfrog",
                    [c2](spmd::SpmdContext& ctx, core::CallArgs& args) {
                      const int nsteps = args.in<int>(0);
                      const dist::LocalSectionView& u = args.local(1);
                      const dist::LocalSectionView& prev = args.local(2);
                      const long long m = u.interior_count();
                      std::span<double> uu(u.f64(),
                                           static_cast<std::size_t>(m));
                      std::span<double> pp(prev.f64(),
                                           static_cast<std::size_t>(m));
                      for (int s = 0; s < nsteps; ++s) {
                        // Snapshot both fields, then assign: u_next into
                        // prev's storage and swap roles — two coupled
                        // multiple-assignment statements.
                        std::vector<double> u_old =
                            ctx.allgather(std::span<const double>(
                                uu.data(), uu.size()));
                        const dp::OldValues old_u{std::move(u_old)};
                        std::vector<double> p_old =
                            ctx.allgather(std::span<const double>(
                                pp.data(), pp.size()));
                        const dp::OldValues old_p{std::move(p_old)};
                        const long long nn = old_u.size();
                        const long long base =
                            static_cast<long long>(ctx.index()) * m;
                        for (long long i = 0; i < m; ++i) {
                          const long long g = base + i;
                          const double left = g > 0 ? old_u(g - 1) : 0.0;
                          const double right =
                              g < nn - 1 ? old_u(g + 1) : 0.0;
                          const double next =
                              2.0 * old_u(g) - old_p(g) +
                              c2 * (left - 2.0 * old_u(g) + right);
                          pp[static_cast<std::size_t>(i)] = next;
                        }
                        std::swap_ranges(uu.begin(), uu.end(), pp.begin());
                      }
                    });

  dist::ArrayId u;
  dist::ArrayId u_prev;
  for (dist::ArrayId* id : {&u, &u_prev}) {
    rt.arrays().create_array(0, dist::ElemType::Float64, {n}, rt.all_procs(),
                             {dist::DimSpec::block()},
                             dist::BorderSpec::none(),
                             dist::Indexing::RowMajor, *id);
  }
  // Initial pulse in the middle, at rest (u_prev = u).
  for (int i = 0; i < n; ++i) {
    const double x = (i - n / 2) / 4.0;
    const double v = std::exp(-x * x);
    rt.arrays().write_element(0, u, std::vector<int>{i}, dist::Scalar{v});
    rt.arrays().write_element(0, u_prev, std::vector<int>{i},
                              dist::Scalar{v});
  }

  util::atomic_print_items("1-D wave equation, ", n, " cells on ", p,
                           " processors, ", steps, " leapfrog steps");
  util::atomic_print(render(rt, u, n));
  const double e0 = field_energy(rt, u, n);

  for (int frame = 0; frame < 4; ++frame) {
    const int status = rt.call(rt.all_procs(), "wave_leapfrog")
                           .constant(steps / 4)
                           .local(u)
                           .local(u_prev)
                           .run();
    if (status != kStatusOk) {
      util::atomic_print_items("wave call failed with status ", status);
      return EXIT_FAILURE;
    }
    util::atomic_print(render(rt, u, n));
  }

  const double e1 = field_energy(rt, u, n);
  util::atomic_print_items("field energy: ", e0, " -> ", e1);
  // The pulse splits and travels; with reflecting-ish zero boundaries and
  // short horizon, the energy stays the same order of magnitude.
  const bool sane = e1 > 0.05 * e0 && e1 < 5.0 * e0;
  rt.arrays().free_array(0, u);
  rt.arrays().free_array(0, u_prev);
  util::atomic_print(sane ? "wave propagated" : "UNEXPECTED energy drift");
  return sane ? EXIT_SUCCESS : EXIT_FAILURE;
}
