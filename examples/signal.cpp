// Signal processing with the FFT pipeline machinery (thesis §2.3.2).
//
// The thesis motivates the pipelined problem class with "signal-processing
// operations like convolution, correlation, and filtering".  This example
// runs all three through distributed calls to the §6.2.3 FFT programs:
//   * convolution — smoothing a noisy step with a box kernel;
//   * correlation — locating a known chirp inside a noisy recording;
//   * filtering   — an ideal low-pass separating two superposed tones.
#include <cmath>
#include <cstdlib>
#include <numbers>
#include <random>

#include "core/runtime.hpp"
#include "fft/signal.hpp"
#include "util/atomic_print.hpp"

int main() {
  using namespace tdp;
  core::Runtime rt(4);
  std::mt19937 rng(2093);
  std::normal_distribution<double> noise(0.0, 0.1);
  bool all_good = true;

  // --- Convolution: smooth a noisy step with a box kernel. ----------------
  {
    std::vector<double> step(48);
    for (int i = 0; i < 48; ++i) {
      step[static_cast<std::size_t>(i)] = (i < 24 ? 0.0 : 1.0) + noise(rng);
    }
    const std::vector<double> box(8, 1.0 / 8.0);
    const std::vector<double> smooth =
        fft::convolve(rt, rt.all_procs(), step, box);
    // Far from the edge the smoothed signal must sit near 0 and near 1.
    const double low = smooth[10];
    const double high = smooth[40];
    util::atomic_print_items("convolution: smoothed plateau levels ", low,
                             " / ", high);
    all_good = all_good && std::fabs(low) < 0.2 && std::fabs(high - 1) < 0.2;
  }

  // --- Correlation: find a chirp buried in noise. --------------------------
  {
    std::vector<double> chirp(10);
    for (int i = 0; i < 10; ++i) {
      chirp[static_cast<std::size_t>(i)] =
          std::sin(0.25 * i * i);  // quadratic phase
    }
    const int true_offset = 31;
    std::vector<double> recording(96);
    for (auto& v : recording) v = noise(rng);
    for (int i = 0; i < 10; ++i) {
      recording[static_cast<std::size_t>(true_offset + i)] +=
          chirp[static_cast<std::size_t>(i)];
    }
    const std::vector<double> corr =
        fft::correlate(rt, rt.all_procs(), recording, chirp);
    std::size_t argmax = 0;
    for (std::size_t k = 1; k < corr.size(); ++k) {
      if (corr[k] > corr[argmax]) argmax = k;
    }
    const int found = static_cast<int>(argmax) - (10 - 1);
    util::atomic_print_items("correlation: chirp found at offset ", found,
                             " (true ", true_offset, ")");
    all_good = all_good && found == true_offset;
  }

  // --- Filtering: separate superposed tones. -------------------------------
  {
    const int n = 128;
    std::vector<double> mixed(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const double t = 2.0 * std::numbers::pi * i / n;
      mixed[static_cast<std::size_t>(i)] =
          std::sin(3.0 * t) + 0.8 * std::sin(37.0 * t);
    }
    const std::vector<double> low =
        fft::lowpass_filter(rt, rt.all_procs(), mixed, 8);
    double err = 0.0;
    for (int i = 0; i < n; ++i) {
      const double t = 2.0 * std::numbers::pi * i / n;
      err = std::max(err, std::fabs(low[static_cast<std::size_t>(i)] -
                                    std::sin(3.0 * t)));
    }
    util::atomic_print_items("filtering: low tone recovered, max error ",
                             err);
    all_good = all_good && err < 1e-9;
  }

  util::atomic_print(all_good ? "all signal operations correct"
                              : "FAILURES detected");
  return all_good ? EXIT_SUCCESS : EXIT_FAILURE;
}
