// spmd_ring — one SPMD program, two substrates.
//
// Run it plain and the group is P threads in one process (the direct
// transport).  Run it under the launcher and each copy is an OS process,
// every message crossing a Unix-domain socket:
//
//   ./spmd_ring                                  # threads, direct post
//   tdp_launch -n 4 ./spmd_ring                  # processes, UDS framing
//
// The program itself cannot tell: the same ring pass, barrier, allreduce,
// broadcast and allgather run over SpmdContext either way — the point of
// the transport boundary.  Every step verifies its result and any rank
// that sees a wrong value exits non-zero, so the launcher's exit status is
// a real end-to-end check.  With TDP_OBS=1 each process writes a
// rank-qualified trace (tdp_trace.rank<k>.json); feed them all to
// tdp_trace and the cross-process send/receive arrows pair up.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "spmd/context.hpp"
#include "vp/machine.hpp"

namespace {

constexpr int kRingTag = 1;

// Returns 0 on success; prints and returns 1 on any wrong value.
int run_copy(tdp::spmd::SpmdContext& ctx) {
  const int p = ctx.index();
  const int n = ctx.nprocs();

  // 1. Ring pass: each copy sends its rank around the ring n-1 hops and
  //    must get its own value back.
  int token = p;
  for (int hop = 0; hop < n - 1; ++hop) {
    // Even/odd phasing would also work, but send-then-receive is safe
    // here: mailboxes buffer, so the ring cannot deadlock.  A per-hop tag
    // keeps the pass correct under duplicate/reorder fault injection:
    // selective receive then matches exactly the hop it awaits.
    ctx.send_value((p + 1) % n, kRingTag + hop, token);
    token = ctx.recv_value<int>((p - 1 + n) % n, kRingTag + hop);
  }
  const int expect_token = (p + 1) % n;
  if (token != expect_token) {
    std::fprintf(stderr, "rank %d: ring pass got %d, expected %d\n", p,
                 token, expect_token);
    return 1;
  }

  ctx.barrier();

  // 2. Allreduce: sum of 0..n-1 on every copy.
  const double sum = ctx.allreduce_sum(static_cast<double>(p));
  const double expect_sum = static_cast<double>(n * (n - 1)) / 2.0;
  if (sum != expect_sum) {
    std::fprintf(stderr, "rank %d: allreduce_sum got %g, expected %g\n", p,
                 sum, expect_sum);
    return 1;
  }

  // 3. Broadcast: root 0 publishes a payload, everyone checks the bytes.
  std::vector<std::byte> mine;
  if (p == 0) {
    for (int k = 0; k < 64; ++k) mine.push_back(static_cast<std::byte>(k));
  }
  tdp::vp::Payload got = ctx.broadcast_payload(
      tdp::vp::Payload::copy_of(std::span<const std::byte>(mine)), 0);
  if (got.size() != 64 ||
      got.data()[63] != static_cast<std::byte>(63)) {
    std::fprintf(stderr, "rank %d: broadcast payload wrong\n", p);
    return 1;
  }

  // 4. Allgather: every copy contributes its square.
  const int square = p * p;
  const std::vector<int> all =
      ctx.allgather(std::span<const int>(&square, 1));
  for (int k = 0; k < n; ++k) {
    if (all[static_cast<std::size_t>(k)] != k * k) {
      std::fprintf(stderr, "rank %d: allgather[%d] = %d, expected %d\n", p,
                   k, all[static_cast<std::size_t>(k)], k * k);
      return 1;
    }
  }

  ctx.barrier();
  if (p == 0) {
    std::printf("spmd_ring: %d copies OK (ring, barrier, allreduce, "
                "broadcast, allgather)\n",
                n);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (tdp::spmd::launched_from_env()) {
    // One rank of a tdp_launch set: the machine spans the launched world
    // and this process runs exactly one copy.
    tdp::vp::Machine machine(tdp::spmd::env_size());
    tdp::vp::ProcScope scope(tdp::spmd::env_rank());
    tdp::spmd::SpmdContext ctx = tdp::spmd::context_from_env(machine);
    return run_copy(ctx);
  }

  // Single process: the classic in-process form, one thread per copy.
  const int n = argc > 1 ? std::atoi(argv[1]) : 4;
  if (n < 1 || n > 64) {
    std::fprintf(stderr, "usage: %s [copies (1..64)]\n", argv[0]);
    return 2;
  }
  tdp::vp::Machine machine(n);
  const std::uint64_t comm = tdp::vp::Machine::next_comm();
  std::vector<int> procs;
  for (int p = 0; p < n; ++p) procs.push_back(p);
  std::vector<std::thread> threads;
  std::vector<int> results(static_cast<std::size_t>(n), 0);
  for (int p = 0; p < n; ++p) {
    threads.emplace_back([&, p] {
      tdp::vp::ProcScope scope(p);
      tdp::spmd::SpmdContext ctx(machine, comm, procs, p);
      results[static_cast<std::size_t>(p)] = run_copy(ctx);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const int r : results) {
    if (r != 0) return r;
  }
  return 0;
}
