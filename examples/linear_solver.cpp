// Reusing an adapted data-parallel library (thesis Appendix D).
//
// The thesis adapted an existing SPMD linear-algebra library so its
// routines could be called from the task-parallel level.  This example
// exercises that library end-to-end: a task-parallel top level builds a
// dense system A x = b in distributed arrays, solves it twice — once with
// the LU (partial pivoting) program, once with the Householder QR program —
// and cross-checks the two data-parallel solvers against each other and
// against the known solution.
#include <cmath>
#include <cstdlib>
#include <random>

#include "core/runtime.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "util/atomic_print.hpp"

namespace {

using tdp::dist::ArrayId;
using tdp::dist::Scalar;

ArrayId make_2d(tdp::core::Runtime& rt, int n) {
  ArrayId id;
  rt.arrays().create_array(0, tdp::dist::ElemType::Float64, {n, n},
                           rt.all_procs(),
                           {tdp::dist::DimSpec::block(),
                            tdp::dist::DimSpec::star()},
                           tdp::dist::BorderSpec::none(),
                           tdp::dist::Indexing::RowMajor, id);
  return id;
}

ArrayId make_1d(tdp::core::Runtime& rt, int n) {
  ArrayId id;
  rt.arrays().create_array(0, tdp::dist::ElemType::Float64, {n},
                           rt.all_procs(), {tdp::dist::DimSpec::block()},
                           tdp::dist::BorderSpec::none(),
                           tdp::dist::Indexing::RowMajor, id);
  return id;
}

}  // namespace

int main() {
  using namespace tdp;
  const int p = 4;
  const int n = 16;

  core::Runtime rt(p);
  linalg::register_lu_programs(rt.programs());
  linalg::register_qr_programs(rt.programs());

  // Build a well-conditioned system with known solution x[i] = sin(i).
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  std::vector<std::vector<double>> a(static_cast<std::size_t>(n),
                                     std::vector<double>(n));
  for (int i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i));
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          dist(rng) + (i == j ? n : 0.0);
    }
  }

  ArrayId a_lu = make_2d(rt, n);
  ArrayId a_qr = make_2d(rt, n);
  ArrayId b_lu = make_1d(rt, n);
  ArrayId b_qr = make_1d(rt, n);
  for (int i = 0; i < n; ++i) {
    double bi = 0.0;
    for (int j = 0; j < n; ++j) {
      const double aij = a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      rt.arrays().write_element(0, a_lu, std::vector<int>{i, j},
                                Scalar{aij});
      rt.arrays().write_element(0, a_qr, std::vector<int>{i, j},
                                Scalar{aij});
      bi += aij * x_true[static_cast<std::size_t>(j)];
    }
    rt.arrays().write_element(0, b_lu, std::vector<int>{i}, Scalar{bi});
    rt.arrays().write_element(0, b_qr, std::vector<int>{i}, Scalar{bi});
  }

  util::atomic_print_items("solving a ", n, "x", n, " system with LU and QR (",
                           p, " processors each)");

  const int lu_status = rt.call(rt.all_procs(), "lu_solve_system")
                            .constant(n)
                            .local(a_lu)
                            .local(b_lu)
                            .status()
                            .run();
  const int qr_status = rt.call(rt.all_procs(), "qr_solve_system")
                            .constant(n)
                            .local(a_qr)
                            .local(b_qr)
                            .status()
                            .run();
  util::atomic_print_items("LU status ", lu_status, ", QR status ",
                           qr_status);

  double lu_err = 0.0;
  double qr_err = 0.0;
  double cross = 0.0;
  for (int i = 0; i < n; ++i) {
    Scalar lu_v;
    Scalar qr_v;
    rt.arrays().read_element(0, b_lu, std::vector<int>{i}, lu_v);
    rt.arrays().read_element(0, b_qr, std::vector<int>{i}, qr_v);
    const double lu_x = dist::scalar_to_double(lu_v);
    const double qr_x = dist::scalar_to_double(qr_v);
    lu_err = std::max(lu_err,
                      std::fabs(lu_x - x_true[static_cast<std::size_t>(i)]));
    qr_err = std::max(qr_err,
                      std::fabs(qr_x - x_true[static_cast<std::size_t>(i)]));
    cross = std::max(cross, std::fabs(lu_x - qr_x));
  }
  util::atomic_print_items("max |x_LU - x_true| = ", lu_err);
  util::atomic_print_items("max |x_QR - x_true| = ", qr_err);
  util::atomic_print_items("max |x_LU - x_QR|   = ", cross);

  const bool good = lu_status == 0 && qr_status == 0 && lu_err < 1e-9 &&
                    qr_err < 1e-9 && cross < 1e-9;
  for (ArrayId id : {a_lu, a_qr, b_lu, b_qr}) rt.arrays().free_array(0, id);
  util::atomic_print(good ? "solvers agree" : "MISMATCH");
  return good ? EXIT_SUCCESS : EXIT_FAILURE;
}
