// Generation of animation frames (thesis §2.3.4, figure 2.4).
//
// The inherently-parallel problem class: independent subproblems, each
// solved by a data-parallel program, with no communication among them.
// Here each animation frame is a Julia-set image rendered into a
// row-distributed array by a data-parallel program; different frames render
// concurrently on disjoint processor groups under a task-parallel top
// level.
#include <chrono>
#include <complex>
#include <cstdlib>

#include "core/runtime.hpp"
#include "pcn/process.hpp"
#include "util/atomic_print.hpp"
#include "util/node_array.hpp"

namespace {

/// Iteration count of z <- z^2 + c from the pixel's point; the frame
/// parameter animates c along a circle.
int julia_iterations(double x, double y, double phase) {
  const std::complex<double> c{0.7885 * std::cos(phase),
                               0.7885 * std::sin(phase)};
  std::complex<double> z{x, y};
  int it = 0;
  while (std::norm(z) < 4.0 && it < 96) {
    z = z * z + c;
    ++it;
  }
  return it;
}

}  // namespace

int main() {
  using namespace tdp;
  const int group = 2;   // processors per frame
  const int frames = 4;  // rendered concurrently
  const int size = 64;   // image is size x size

  core::Runtime rt(group * frames);

  // The data-parallel renderer: fills its local rows of the frame.
  rt.programs().add("render_frame",
                    [&](spmd::SpmdContext& ctx, core::CallArgs& args) {
                      const double phase = args.in<double>(0);
                      const dist::LocalSectionView& img = args.local(1);
                      const int rows = img.interior_dims[0];
                      const int cols = img.interior_dims[1];
                      const int row0 = ctx.index() * rows;
                      for (int r = 0; r < rows; ++r) {
                        for (int col = 0; col < cols; ++col) {
                          const double x =
                              -1.6 + 3.2 * (row0 + r) / (rows * ctx.nprocs());
                          const double y = -1.6 + 3.2 * col / cols;
                          img.f64()[static_cast<std::size_t>(r) * cols + col] =
                              julia_iterations(x, y, phase);
                        }
                      }
                      args.reduce_f64(2)[0] = static_cast<double>(rows * cols);
                    });

  auto render = [&](int frame, const std::vector<int>& procs,
                    dist::ArrayId image) {
    const double phase = 0.4 * frame;
    std::vector<double> pixels;
    rt.call(procs, "render_frame")
        .constant(phase)
        .local(image)
        .reduce_f64(1, core::f64_sum(), &pixels)
        .run();
    return pixels.at(0);
  };

  // Create one frame array per group.
  std::vector<dist::ArrayId> images(static_cast<std::size_t>(frames));
  std::vector<std::vector<int>> groups;
  for (int f = 0; f < frames; ++f) {
    groups.push_back(util::node_array(f * group, 1, group));
    rt.arrays().create_array(0, dist::ElemType::Float64, {size, size},
                             groups.back(),
                             {dist::DimSpec::block(), dist::DimSpec::star()},
                             dist::BorderSpec::none(),
                             dist::Indexing::RowMajor,
                             images[static_cast<std::size_t>(f)]);
  }

  util::atomic_print_items("rendering ", frames, " frames of ", size, "x",
                           size, " concurrently, ", group,
                           " processors each");
  const auto t0 = std::chrono::steady_clock::now();
  {
    pcn::ProcessGroup top;
    for (int f = 0; f < frames; ++f) {
      top.spawn([&, f] {
        const double pixels =
            render(f, groups[static_cast<std::size_t>(f)],
                   images[static_cast<std::size_t>(f)]);
        util::atomic_print_items("frame ", f, " rendered (", pixels,
                                 " pixels)");
      });
    }
  }
  const auto concurrent_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  // Checksum each frame through the global-array interface.
  bool sane = true;
  for (int f = 0; f < frames; ++f) {
    double sum = 0.0;
    for (int j = 0; j < size; j += 7) {
      dist::Scalar v;
      rt.arrays().read_element(0, images[static_cast<std::size_t>(f)],
                               std::vector<int>{j, j}, v);
      sum += dist::scalar_to_double(v);
    }
    util::atomic_print_items("frame ", f, " diagonal checksum ", sum);
    if (sum <= 0.0) sane = false;
  }
  util::atomic_print_items("all frames rendered in ", concurrent_ms, " ms");

  for (dist::ArrayId id : images) rt.arrays().free_array(0, id);
  return sane ? EXIT_SUCCESS : EXIT_FAILURE;
}
