// Direct communication between data-parallel programs — the §7.2.1
// extension, demonstrated on the climate coupling of figure 2.1.
//
// In the base model all traffic between the ocean and atmosphere models
// must pass through the task-parallel caller (see examples/climate.cpp),
// one exchange per *coupling* step.  With channels, the caller creates
// channel endpoints and passes them to the two concurrently-executing
// distributed calls; the copies owning the interface cells then exchange
// boundary data directly after *every* inner step — finer coupling with no
// caller bottleneck.
//
// Pairing: the ocean's interface lives in its last copy (index P-1), the
// atmosphere's in its first (index 0), so the atmosphere call receives its
// channel side reversed — copy 0 of the atmosphere holds the port paired
// with copy P-1 of the ocean.
#include <cmath>
#include <cstdlib>

#include "core/runtime.hpp"
#include "linalg/stencil.hpp"
#include "pcn/process.hpp"
#include "util/atomic_print.hpp"
#include "util/node_array.hpp"

namespace {

using tdp::dist::ArrayId;
using tdp::dist::Scalar;

double read1(tdp::core::Runtime& rt, ArrayId id, int i) {
  Scalar v;
  rt.arrays().read_element(0, id, std::vector<int>{i}, v);
  return tdp::dist::scalar_to_double(v);
}

}  // namespace

int main() {
  using namespace tdp;
  const int group = 4;
  const int m = 32;      // cells per model
  const int steps = 40;  // coupled inner steps
  const double alpha = 0.2;

  core::Runtime rt(2 * group);

  // The coupled heat model: after every step, the copy owning the
  // interface cell trades it directly with its peer in the *other*
  // distributed call and both relax toward the average.
  // Parameters: alpha, steps, iface_high (1 = interface is the model's
  // last cell, 0 = its first), local field (borders 1,1), channel port.
  rt.programs().add(
      "coupled_heat", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
        const double a = args.in<double>(0);
        const int nsteps = args.in<int>(1);
        const bool iface_high = args.in<int>(2) != 0;
        const dist::LocalSectionView& u = args.local(3);
        core::Port& port = args.port(4);
        const int mloc = u.interior_dims[0];
        std::span<double> field(u.f64(),
                                static_cast<std::size_t>(mloc) + 2);
        std::vector<double> scratch(static_cast<std::size_t>(mloc));
        const bool owns_interface = iface_high
                                        ? ctx.index() == ctx.nprocs() - 1
                                        : ctx.index() == 0;
        for (int s = 0; s < nsteps; ++s) {
          linalg::heat_step_1d(ctx, field, mloc, a, scratch, 2 * s);
          if (owns_interface) {
            const std::size_t cell =
                iface_high ? static_cast<std::size_t>(mloc) : 1;
            const double mine = field[cell];
            port.send<double>(std::span<const double>(&mine, 1));
            field[cell] = 0.5 * (mine + port.recv<double>().at(0));
          }
        }
      },
      [](int parm_num, int ndims) {
        std::vector<int> borders(static_cast<std::size_t>(2 * ndims), 0);
        if (parm_num == 3 && ndims == 1) borders = {1, 1};
        return borders;
      });

  const std::vector<int> ocean_procs = util::node_array(0, 1, group);
  const std::vector<int> atmos_procs = util::node_array(group, 1, group);

  auto make_field = [&](const std::vector<int>& procs, double value) {
    ArrayId id;
    rt.arrays().create_array(0, dist::ElemType::Float64, {m}, procs,
                             {dist::DimSpec::block()},
                             dist::BorderSpec::foreign("coupled_heat", 3),
                             dist::Indexing::RowMajor, id);
    for (int i = 0; i < m; ++i) {
      rt.arrays().write_element(0, id, std::vector<int>{i}, Scalar{value});
    }
    return id;
  };

  ArrayId ocean = make_field(ocean_procs, 80.0);
  ArrayId atmos = make_field(atmos_procs, 10.0);

  // Channels between the two calls; the atmosphere side is reversed so its
  // copy 0 pairs with the ocean's copy group-1.
  auto [ocean_side, atmos_side] = core::make_channels(group);

  util::atomic_print_items("channel-coupled climate: ", steps,
                           " inner steps, interface exchanged directly");

  int status_ocean = -1;
  int status_atmos = -1;
  pcn::par(
      [&] {
        status_ocean = rt.call(ocean_procs, "coupled_heat")
                           .constant(alpha)
                           .constant(steps)
                           .constant(1)
                           .local(ocean)
                           .port(ocean_side)
                           .run();
      },
      [&] {
        status_atmos = rt.call(atmos_procs, "coupled_heat")
                           .constant(alpha)
                           .constant(steps)
                           .constant(0)
                           .local(atmos)
                           .port(atmos_side.reversed())
                           .run();
      });

  const double ocean_iface = read1(rt, ocean, m - 1);
  const double atmos_iface = read1(rt, atmos, 0);
  util::atomic_print_items("ocean interface ", ocean_iface,
                           ", atmosphere interface ", atmos_iface);
  const bool sane = status_ocean == kStatusOk && status_atmos == kStatusOk &&
                    ocean_iface < 80.0 && ocean_iface > 10.0 &&
                    atmos_iface > 10.0 && atmos_iface < 80.0 &&
                    std::fabs(ocean_iface - atmos_iface) < 20.0;
  util::atomic_print(sane ? "direct coupling worked" : "UNEXPECTED result");

  rt.arrays().free_array(0, ocean);
  rt.arrays().free_array(0, atmos);
  return sane ? EXIT_SUCCESS : EXIT_FAILURE;
}
