// Ablation — linear versus tree collective algorithms (spmd/coll).
//
// The thesis's distributed calls lean on group collectives; their cost
// model changes qualitatively with the algorithm family.  A linear
// broadcast makes the root copy and post P-1 payloads sequentially
// (O(P) root work, O(P) depth); the binomial tree wraps the payload once
// and forwards the refcounted buffer down ceil(log2 P) levels (O(log P)
// root work and depth, zero fan-out copies).  Series: broadcast and
// allreduce time as a function of group size and payload size, both
// families, plus the fully zero-copy payload-handle broadcast.  Expected
// shape: near-parity at small payloads (per-message latency dominates),
// tree pulling ahead as payloads grow — decisively at P=16 for >=4KiB,
// where the root's copy work is the bottleneck.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "pcn/process.hpp"
#include "spmd/coll.hpp"
#include "spmd/context.hpp"
#include "util/node_array.hpp"
#include "vp/machine.hpp"
#include "vp/payload.hpp"

namespace {

using namespace tdp;

// Collectives back-to-back per group spawn: amortises the spawn cost
// (identical in both families) so the steady-state collective cost shows.
constexpr int kRounds = 16;

void run_group(vp::Machine& machine, int p,
               const std::function<void(spmd::SpmdContext&)>& body) {
  const std::uint64_t comm = machine.next_comm();
  const std::vector<int> procs = util::iota_nodes(p);
  pcn::ProcessGroup group;
  for (int i = 0; i < p; ++i) {
    group.spawn_on(machine, procs[static_cast<std::size_t>(i)], [&, i] {
      spmd::SpmdContext ctx(machine, comm, procs, i);
      body(ctx);
    });
  }
  group.join();
}

void set_counters(benchmark::State& state, int p, std::size_t bytes,
                  bool tree) {
  state.counters["procs"] = p;
  state.counters["payload_bytes"] = static_cast<double>(bytes);
  state.counters["tree"] = tree ? 1 : 0;
  state.SetItemsProcessed(state.iterations() * kRounds);
}

void BM_Broadcast(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  const bool tree = state.range(2) != 0;
  spmd::coll::force(tree ? spmd::coll::Algo::Tree : spmd::coll::Algo::Linear);
  vp::Machine machine(p);
  for (auto _ : state) {
    run_group(machine, p, [&](spmd::SpmdContext& ctx) {
      std::vector<std::byte> data(bytes, std::byte{1});
      for (int r = 0; r < kRounds; ++r) {
        spmd::coll::broadcast(ctx, std::span<std::byte>(data), 0);
      }
    });
  }
  spmd::coll::unforce();
  set_counters(state, p, bytes, tree);
}

void BM_BroadcastPayload(benchmark::State& state) {
  // The handle-only fan-out: no per-receiver delivery copy either, so this
  // is the floor the typed tree broadcast approaches as P grows.
  const int p = static_cast<int>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  const bool tree = state.range(2) != 0;
  spmd::coll::force(tree ? spmd::coll::Algo::Tree : spmd::coll::Algo::Linear);
  vp::Machine machine(p);
  for (auto _ : state) {
    run_group(machine, p, [&](spmd::SpmdContext& ctx) {
      for (int r = 0; r < kRounds; ++r) {
        vp::Payload mine;
        if (ctx.index() == 0) {
          mine = vp::Payload::take(std::vector<std::byte>(bytes, std::byte{1}));
        }
        benchmark::DoNotOptimize(ctx.broadcast_payload(std::move(mine), 0));
      }
    });
  }
  spmd::coll::unforce();
  set_counters(state, p, bytes, tree);
}

void BM_Reduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  const bool tree = state.range(2) != 0;
  const std::size_t doubles = bytes < sizeof(double) ? 1 : bytes / sizeof(double);
  spmd::coll::force(tree ? spmd::coll::Algo::Tree : spmd::coll::Algo::Linear);
  vp::Machine machine(p);
  for (auto _ : state) {
    run_group(machine, p, [&](spmd::SpmdContext& ctx) {
      std::vector<double> data(doubles, 1.0);
      for (int r = 0; r < kRounds; ++r) {
        ctx.reduce<double>(
            std::span<double>(data), 0,
            [](const double& a, const double& b) { return a + b; });
      }
    });
  }
  spmd::coll::unforce();
  set_counters(state, p, doubles * sizeof(double), tree);
}

void BM_Allreduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  const bool tree = state.range(2) != 0;
  const std::size_t doubles = bytes < sizeof(double) ? 1 : bytes / sizeof(double);
  spmd::coll::force(tree ? spmd::coll::Algo::Tree : spmd::coll::Algo::Linear);
  vp::Machine machine(p);
  for (auto _ : state) {
    run_group(machine, p, [&](spmd::SpmdContext& ctx) {
      std::vector<double> data(doubles, 1.0);
      for (int r = 0; r < kRounds; ++r) {
        ctx.allreduce<double>(
            std::span<double>(data),
            [](const double& a, const double& b) { return a + b; });
      }
    });
  }
  spmd::coll::unforce();
  set_counters(state, p, doubles * sizeof(double), tree);
}

// P in {4, 8, 16}; payloads 8B..1MiB; {0,1} = linear,tree.
const std::vector<std::vector<std::int64_t>> kArgs = {
    {4, 8, 16},
    {8, 4096, 65536, 1 << 20},
    {0, 1},
};

BENCHMARK(BM_Broadcast)->ArgsProduct(kArgs)->UseRealTime();
BENCHMARK(BM_BroadcastPayload)->ArgsProduct(kArgs)->UseRealTime();
BENCHMARK(BM_Reduce)->ArgsProduct(kArgs)->UseRealTime();
BENCHMARK(BM_Allreduce)->ArgsProduct(kArgs)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
