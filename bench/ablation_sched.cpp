// Ablation — work-stealing scheduler vs thread-per-VP (ROADMAP item 1).
//
// The paper's PCN layer assumes processes are cheap and abundant; the
// thread-per-VP lane prices every blocked process at an OS thread, capping
// realistic runs.  The workload here is the scheduler's worst case turned
// exit proof: a token ring of V virtual processors where at any instant
// V-1 processes are blocked in a selective receive and exactly one is
// runnable.  Under TDP_SCHED=steal the blocked V-1 cost suspended-task
// records on a fixed pool of workers (TDP_SCHED_WORKERS, pinned to 4 here
// so the series measures multiplexing, not core count); under the legacy
// thread lane they cost V parked OS threads.  The steal series runs to
// 16384 VPs; the thread series stops at 4096, the largest count the lane
// sustains comfortably on this host (per-thread stacks and spawn latency
// dominate long before then — which is the point).
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_util.hpp"
#include "pcn/process.hpp"
#include "sched/sched.hpp"
#include "vp/machine.hpp"
#include "vp/mailbox.hpp"

namespace {

using namespace tdp;

// Pin the steal pool before the scheduler first starts (worker_count is
// cached on first use); an explicit TDP_SCHED_WORKERS in the environment
// still wins.
const bool g_pin_workers = [] {
  ::setenv("TDP_SCHED_WORKERS", "4", /*overwrite=*/0);
  return true;
}();

constexpr int kRounds = 4;

void run_token_ring(benchmark::State& state, int nvps) {
  for (auto _ : state) {
    vp::Machine machine(nvps);
    pcn::ProcessGroup group;
    for (int i = 0; i < nvps; ++i) {
      group.spawn_on(machine, i, [&machine, i, nvps] {
        const int next = (i + 1) % nvps;
        const int prev = (i + nvps - 1) % nvps;
        for (int r = 0; r < kRounds; ++r) {
          vp::Message token;
          token.cls = vp::MessageClass::TaskParallel;
          token.tag = r;
          token.src = i;
          if (i == 0) {
            machine.send(next, std::move(token));
            (void)machine.mailbox(i).receive(vp::MessageClass::TaskParallel,
                                             0, r, prev);
          } else {
            (void)machine.mailbox(i).receive(vp::MessageClass::TaskParallel,
                                             0, r, prev);
            machine.send(next, std::move(token));
          }
        }
      });
    }
    group.join();
  }
  state.counters["vps"] = nvps;
  state.counters["messages_per_iter"] = nvps * kRounds;
}

void BM_TokenRingSteal(benchmark::State& state) {
  sched::force_sched_mode(sched::SchedMode::Steal);
  run_token_ring(state, static_cast<int>(state.range(0)));
  state.counters["workers"] =
      static_cast<double>(sched::stats().workers);
  state.SetLabel("steal");
  sched::unforce_sched_mode();
}
BENCHMARK(BM_TokenRingSteal)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(10240)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

void BM_TokenRingThread(benchmark::State& state) {
  sched::force_sched_mode(sched::SchedMode::Thread);
  run_token_ring(state, static_cast<int>(state.range(0)));
  // One OS thread per VP: the "pool" is the VP count itself.
  state.counters["workers"] = static_cast<double>(state.range(0));
  state.SetLabel("thread");
  sched::unforce_sched_mode();
}
BENCHMARK(BM_TokenRingThread)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

// Spawn/complete throughput with no blocking at all: the floor cost of a
// process on each lane (fiber + stack-pool reuse vs pthread create/join).
void BM_SpawnJoinSteal(benchmark::State& state) {
  sched::force_sched_mode(sched::SchedMode::Steal);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pcn::ProcessGroup group;
    for (int i = 0; i < n; ++i) {
      group.spawn([] { benchmark::DoNotOptimize(0); });
    }
    group.join();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("steal");
  sched::unforce_sched_mode();
}
BENCHMARK(BM_SpawnJoinSteal)->Arg(1024)->Arg(10240)->UseRealTime();

void BM_SpawnJoinThread(benchmark::State& state) {
  sched::force_sched_mode(sched::SchedMode::Thread);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pcn::ProcessGroup group;
    for (int i = 0; i < n; ++i) {
      group.spawn([] { benchmark::DoNotOptimize(0); });
    }
    group.join();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("thread");
  sched::unforce_sched_mode();
}
BENCHMARK(BM_SpawnJoinThread)->Arg(1024)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
