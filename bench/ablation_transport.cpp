// ablation_transport — what does the process boundary cost?
//
// The same SpmdContext ping-pong runs over both delivery substrates:
//
//   pingpong_direct/N   two VPs in one process (direct mailbox post);
//                       the echo peer is a thread
//   pingpong_uds/N      two VPs in two processes (TDP_TRANSPORT=uds);
//                       the echo peer is a forked rank, every message
//                       framed onto a Unix-domain socket
//
// N is the payload size in bytes; ns_per_op is one full round trip (two
// messages), and the bytes/s counter gives effective throughput at that
// size.  The delta between the two families is the price of leaving the
// address space: two syscalls + one payload copy each way, against the
// direct path's pointer hand-off — multi-process deployment buys fault
// isolation and real parallel address spaces at exactly this cost.
//
// Process model: the echo peer is this same binary re-exec'd with
// TDP_BENCH_ROLE=echo (rank 1 of a 2-rank set); the benchmark parent is
// rank 0.  An empty payload is the stop marker.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "spmd/context.hpp"
#include "vp/machine.hpp"

namespace {

constexpr int kPing = 1;
constexpr int kPong = 2;

// One echo turn: bounce every ping back until the empty stop marker.
void echo_loop(tdp::spmd::SpmdContext& ctx) {
  for (;;) {
    tdp::vp::Payload p = ctx.recv_payload(0, kPing);
    if (p.size() == 0) return;
    ctx.send_payload(0, kPong, std::move(p));
  }
}

int echo_main() {
  tdp::vp::Machine machine(tdp::spmd::env_size());
  tdp::vp::ProcScope scope(tdp::spmd::env_rank());
  tdp::spmd::SpmdContext ctx = tdp::spmd::context_from_env(machine);
  echo_loop(ctx);
  return 0;
}

void run_pingpong(benchmark::State& state, tdp::spmd::SpmdContext& ctx,
                  std::size_t bytes) {
  tdp::vp::Payload ball = tdp::vp::Payload::zeros(bytes);
  for (auto _ : state) {
    ctx.send_payload(1, kPing, ball);
    ball = ctx.recv_payload(1, kPong);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes) * 2);
  state.counters["payload_bytes"] = static_cast<double>(bytes);
}

void BM_pingpong_direct(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  tdp::vp::Machine machine(2);
  const std::uint64_t comm = tdp::vp::Machine::next_comm();
  const std::vector<int> procs{0, 1};
  std::thread echo([&machine, comm, &procs] {
    tdp::vp::ProcScope scope(1);
    tdp::spmd::SpmdContext ctx(machine, comm, procs, 1);
    echo_loop(ctx);
  });
  {
    tdp::vp::ProcScope scope(0);
    tdp::spmd::SpmdContext ctx(machine, comm, procs, 0);
    run_pingpong(state, ctx, bytes);
    ctx.send_payload(1, kPing, tdp::vp::Payload());  // stop
  }
  echo.join();
}

void BM_pingpong_uds(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));

  const char* tmp = std::getenv("TMPDIR");
  std::string templ =
      std::string(tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp") +
      "/tdp_bench_uds.XXXXXX";
  std::vector<char> dirbuf(templ.begin(), templ.end());
  dirbuf.push_back('\0');
  if (mkdtemp(dirbuf.data()) == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  const std::string dir = dirbuf.data();

  // The echo rank: this binary re-exec'd.  Environment built before fork.
  std::vector<std::string> env = {
      "TDP_BENCH_ROLE=echo", "TDP_TRANSPORT=uds", "TDP_RANK=1",
      "TDP_SIZE=2",          "TDP_UDS_DIR=" + dir,
  };
  for (const char* keep :
       {"PATH", "HOME", "TMPDIR", "TSAN_OPTIONS", "ASAN_OPTIONS"}) {
    if (const char* v = std::getenv(keep); v != nullptr) {
      env.push_back(std::string(keep) + "=" + v);
    }
  }
  std::vector<char*> envp;
  for (std::string& e : env) envp.push_back(e.data());
  envp.push_back(nullptr);
  static char argv0[] = "ablation_transport_echo";
  char* child_argv[] = {argv0, nullptr};
  const pid_t pid = fork();
  if (pid < 0) {
    state.SkipWithError("fork failed");
    return;
  }
  if (pid == 0) {
    execve("/proc/self/exe", child_argv, envp.data());
    _exit(127);
  }

  // The parent is rank 0 of the same set.
  ::setenv("TDP_TRANSPORT", "uds", 1);
  ::setenv("TDP_RANK", "0", 1);
  ::setenv("TDP_SIZE", "2", 1);
  ::setenv("TDP_UDS_DIR", dir.c_str(), 1);
  {
    tdp::vp::Machine machine(2);
    tdp::vp::ProcScope scope(0);
    tdp::spmd::SpmdContext ctx = tdp::spmd::context_from_env(machine);
    run_pingpong(state, ctx, bytes);
    ctx.send_payload(1, kPing, tdp::vp::Payload());  // stop
    // Machine teardown closes our sockets AFTER the stop frame is queued;
    // SOCK_STREAM delivers buffered bytes before EOF, so the child sees
    // the stop, not a truncated stream.
  }
  ::unsetenv("TDP_TRANSPORT");
  ::unsetenv("TDP_RANK");
  ::unsetenv("TDP_SIZE");
  ::unsetenv("TDP_UDS_DIR");
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    state.SkipWithError("echo rank failed");
  }
  ::rmdir(dir.c_str());
}

BENCHMARK(BM_pingpong_direct)
    ->Arg(64)
    ->Arg(4 << 10)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->UseRealTime();
BENCHMARK(BM_pingpong_uds)
    ->Arg(64)
    ->Arg(4 << 10)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  if (const char* role = std::getenv("TDP_BENCH_ROLE");
      role != nullptr && role[0] != '\0') {
    return echo_main();
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::tdp::bench::JsonLineReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  return 0;
}
