// §7.2.1 extension — direct communication between data-parallel programs.
//
// The thesis identifies the through-the-caller coupling as a bottleneck
// "for problems in which there is a significant amount of data to be
// exchanged among different data-parallel programs" and proposes channels.
// Series: per-exchange cost of (a) returning to the caller between inner
// steps and moving boundary data via global element access vs (b) one long
// distributed call per model with direct channel exchanges — as the
// exchange payload grows.  Expect a crossover firmly in favour of channels
// as coupling gets finer or payloads get bigger.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/channels.hpp"
#include "pcn/process.hpp"

namespace {

using namespace tdp;

constexpr int kGroup = 2;

/// Model A and B each smooth their field once per inner step and exchange a
/// `payload`-sized boundary strip with the other model.
void register_models(core::Runtime& rt) {
  // Channel version: one call runs all inner steps; copy 0 exchanges the
  // strip directly each step.
  rt.programs().add("strip_model_channels",
                    [](spmd::SpmdContext& ctx, core::CallArgs& args) {
                      const int steps = args.in<int>(0);
                      const int payload = args.in<int>(1);
                      const dist::LocalSectionView& u = args.local(2);
                      core::Port& port = args.port(3);
                      const long long m = u.interior_count();
                      for (int s = 0; s < steps; ++s) {
                        for (long long i = 0; i < m; ++i) {
                          u.f64()[i] = 0.5 * (u.f64()[i] + 1.0);
                        }
                        if (ctx.index() == 0) {
                          port.send<double>(std::span<const double>(
                              u.f64(), static_cast<std::size_t>(payload)));
                          std::vector<double> strip = port.recv<double>();
                          for (int i = 0; i < payload; ++i) {
                            u.f64()[i] = 0.5 * (u.f64()[i] +
                                                strip[static_cast<std::size_t>(i)]);
                          }
                        }
                      }
                    });
  // Caller version: one call per inner step; the strip moves through the
  // task-parallel level via global element reads/writes.
  rt.programs().add("strip_model_step",
                    [](spmd::SpmdContext&, core::CallArgs& args) {
                      const dist::LocalSectionView& u = args.local(0);
                      const long long m = u.interior_count();
                      for (long long i = 0; i < m; ++i) {
                        u.f64()[i] = 0.5 * (u.f64()[i] + 1.0);
                      }
                    });
}

void BM_CouplingThroughCaller(benchmark::State& state) {
  const int payload = static_cast<int>(state.range(0));
  const int steps = 16;
  const int cells = 4096;
  core::Runtime rt(2 * kGroup);
  register_models(rt);
  const std::vector<int> pa = util::node_array(0, 1, kGroup);
  const std::vector<int> pb = util::node_array(kGroup, 1, kGroup);
  dist::ArrayId a = bench::make_vector(rt, cells, pa);
  dist::ArrayId b = bench::make_vector(rt, cells, pb);
  for (auto _ : state) {
    for (int s = 0; s < steps; ++s) {
      pcn::par([&] { rt.call(pa, "strip_model_step").local(a).run(); },
               [&] { rt.call(pb, "strip_model_step").local(b).run(); });
      // Exchange the boundary strip through global element access.
      for (int i = 0; i < payload; ++i) {
        dist::Scalar va;
        dist::Scalar vb;
        rt.arrays().read_element(0, a, std::vector<int>{i}, va);
        rt.arrays().read_element(0, b, std::vector<int>{i}, vb);
        const double avg = 0.5 * (dist::scalar_to_double(va) +
                                  dist::scalar_to_double(vb));
        rt.arrays().write_element(0, a, std::vector<int>{i},
                                  dist::Scalar{avg});
        rt.arrays().write_element(0, b, std::vector<int>{i},
                                  dist::Scalar{avg});
      }
    }
  }
  state.counters["payload"] = payload;
}
BENCHMARK(BM_CouplingThroughCaller)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CouplingThroughChannels(benchmark::State& state) {
  const int payload = static_cast<int>(state.range(0));
  const int steps = 16;
  const int cells = 4096;
  core::Runtime rt(2 * kGroup);
  register_models(rt);
  const std::vector<int> pa = util::node_array(0, 1, kGroup);
  const std::vector<int> pb = util::node_array(kGroup, 1, kGroup);
  dist::ArrayId a = bench::make_vector(rt, cells, pa);
  dist::ArrayId b = bench::make_vector(rt, cells, pb);
  for (auto _ : state) {
    auto [side_a, side_b] = core::make_channels(kGroup);
    pcn::par(
        [&, sa = side_a] {
          rt.call(pa, "strip_model_channels")
              .constant(steps)
              .constant(payload)
              .local(a)
              .port(sa)
              .run();
        },
        [&, sb = side_b] {
          rt.call(pb, "strip_model_channels")
              .constant(steps)
              .constant(payload)
              .local(b)
              .port(sb)
              .run();
        });
  }
  state.counters["payload"] = payload;
}
BENCHMARK(BM_CouplingThroughChannels)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
