// Figure 2.2 — the Fourier-transform pipeline.
//
// Three data-parallel stages (inverse DFT, elementwise manipulation,
// forward DFT) execute concurrently as a pipeline under a task-parallel top
// level.  The paper's claim: "except during the initial filling of the
// pipeline, all stages can operate concurrently" — while stage 1 processes
// dataset N, stage 2 processes N-1 and stage 3 processes N-2.  The
// measurable shape: for M datasets, pipelined wall time approaches
// (M + 2) * t_stage while serial execution costs M * 3 * t_stage, i.e. a
// speedup approaching the number of stages.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "fft/fft.hpp"
#include "pcn/process.hpp"
#include "pcn/stream.hpp"

namespace {

using namespace tdp;
using Dataset = std::vector<double>;

constexpr int kTransform = 512;  // complex points per dataset
constexpr int kGroup = 2;        // processors per stage

struct Pipe {
  core::Runtime rt{3 * kGroup};
  std::vector<std::vector<int>> groups;
  std::vector<dist::ArrayId> data;
  std::vector<dist::ArrayId> eps;

  Pipe() {
    fft::register_programs(rt.programs());
    for (int s = 0; s < 3; ++s) {
      groups.push_back(util::node_array(s * kGroup, 1, kGroup));
      data.push_back(bench::make_vector(rt, 2 * kTransform, groups.back()));
      dist::ArrayId e;
      rt.arrays().create_array(
          0, dist::ElemType::Float64, {2 * kTransform, kGroup},
          groups.back(), {dist::DimSpec::star(), dist::DimSpec::block()},
          dist::BorderSpec::none(), dist::Indexing::ColumnMajor, e);
      rt.call(groups.back(), "compute_roots")
          .constant(kTransform)
          .local(e)
          .run();
      eps.push_back(e);
    }
  }

  /// One stage's data-parallel work on stage s: a transform on its array
  /// plus simulated node compute time (see bench_util.hpp: wall-clock delay
  /// stands in for node compute so stage overlap is visible on any host).
  void stage(int s, bool forward) {
    bench::simulated_node_work(2.0);
    rt.call(groups[static_cast<std::size_t>(s)],
            forward ? "fft_natural" : "fft_reverse")
        .constant(groups[static_cast<std::size_t>(s)])
        .constant(kGroup)
        .index()
        .constant(kTransform)
        .constant(forward ? fft::kForward : fft::kInverse)
        .local(eps[static_cast<std::size_t>(s)])
        .local(data[static_cast<std::size_t>(s)])
        .run();
  }
};

void BM_SerialStages(benchmark::State& state) {
  // Baseline: all three stages for each dataset, one dataset at a time.
  const int datasets = static_cast<int>(state.range(0));
  Pipe pipe;
  for (auto _ : state) {
    for (int d = 0; d < datasets; ++d) {
      pipe.stage(0, false);
      pipe.stage(1, false);
      pipe.stage(2, true);
    }
  }
  state.counters["datasets"] = datasets;
  state.SetItemsProcessed(state.iterations() * datasets);
}
BENCHMARK(BM_SerialStages)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PipelinedStages(benchmark::State& state) {
  // The figure's shape: stages run as persistent task-parallel processes
  // connected by streams; dataset d+1 enters stage 1 while d is in stage 2.
  const int datasets = static_cast<int>(state.range(0));
  Pipe pipe;
  for (auto _ : state) {
    pcn::Stream<int> s01;
    pcn::Stream<int> s12;
    pcn::Stream<int> s2out;
    pcn::par(
        [&] {
          pcn::Stream<int> t = s01;
          for (int d = 0; d < datasets; ++d) {
            pipe.stage(0, false);
            t = t.put(d);
          }
          t.close();
        },
        [&] {
          pcn::Stream<int> in = s01;
          pcn::Stream<int> out = s12;
          while (in.next()) {
            pipe.stage(1, false);
            out = out.put(0);
          }
          out.close();
        },
        [&] {
          pcn::Stream<int> in = s12;
          pcn::Stream<int> out = s2out;
          while (in.next()) {
            pipe.stage(2, true);
            out = out.put(0);
          }
          out.close();
        },
        [&] {
          pcn::Stream<int> in = s2out;
          while (in.next()) {
          }
        });
  }
  state.counters["datasets"] = datasets;
  state.SetItemsProcessed(state.iterations() * datasets);
}
BENCHMARK(BM_PipelinedStages)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
