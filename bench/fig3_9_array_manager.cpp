// Figure 3.9 — runtime support for distributed arrays.
//
// The array manager serves global-construct requests: element reads and
// writes route to the owning processor's manager; local-section lookups are
// local.  Series: element access latency when the element is local to the
// requesting manager vs owned remotely; find_local and find_info request
// cost; and figure 3.8's row- vs column-major distribution as a throughput
// comparison.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace tdp;

void BM_ReadElementLocalOwner(benchmark::State& state) {
  core::Runtime rt(4);
  dist::ArrayId id = bench::make_vector(rt, 4096, rt.all_procs());
  // Element 0 is owned by processor 0; issue the request there.
  dist::Scalar v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rt.arrays().read_element(0, id, std::vector<int>{0}, v));
  }
}
BENCHMARK(BM_ReadElementLocalOwner);

void BM_ReadElementRemoteOwner(benchmark::State& state) {
  core::Runtime rt(4);
  dist::ArrayId id = bench::make_vector(rt, 4096, rt.all_procs());
  // Element 4095 is owned by processor 3; issue the request on 0.
  dist::Scalar v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rt.arrays().read_element(0, id, std::vector<int>{4095}, v));
  }
}
BENCHMARK(BM_ReadElementRemoteOwner);

void BM_WriteElement(benchmark::State& state) {
  core::Runtime rt(4);
  dist::ArrayId id = bench::make_vector(rt, 4096, rt.all_procs());
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.arrays().write_element(
        0, id, std::vector<int>{i}, dist::Scalar{1.0}));
    i = (i + 1) & 4095;
  }
}
BENCHMARK(BM_WriteElement);

void BM_WholeArraySweepThroughGlobalInterface(benchmark::State& state) {
  // The cost of the task-parallel program touching every element through
  // the global view — the path the thesis reserves for "simple
  // manipulations" as opposed to data-parallel bulk work.
  const int n = static_cast<int>(state.range(0));
  core::Runtime rt(4);
  dist::ArrayId id = bench::make_vector(rt, n, rt.all_procs());
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      rt.arrays().write_element(0, id, std::vector<int>{i},
                                dist::Scalar{static_cast<double>(i)});
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WholeArraySweepThroughGlobalInterface)->Arg(1024)->Arg(16384);

void BM_FindLocal(benchmark::State& state) {
  core::Runtime rt(4);
  dist::ArrayId id = bench::make_vector(rt, 4096, rt.all_procs());
  dist::LocalSectionView view;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.arrays().find_local(2, id, view));
  }
}
BENCHMARK(BM_FindLocal);

void BM_FindInfo(benchmark::State& state) {
  core::Runtime rt(4);
  dist::ArrayId id = bench::make_vector(rt, 4096, rt.all_procs());
  dist::InfoValue v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rt.arrays().find_info(1, id, dist::InfoKind::LocalDimensions, v));
  }
}
BENCHMARK(BM_FindInfo);

void BM_ElementSweepByIndexing(benchmark::State& state) {
  // Figure 3.8: the same 2-D traversal under row- vs column-major
  // distribution; traversal order matches storage for one and fights it for
  // the other.
  const bool row_major = state.range(0) != 0;
  const int n = 128;
  core::Runtime rt(4);
  dist::ArrayId id;
  rt.arrays().create_array(
      0, dist::ElemType::Float64, {n, n}, rt.all_procs(),
      {dist::DimSpec::block(), dist::DimSpec::block()},
      dist::BorderSpec::none(),
      row_major ? dist::Indexing::RowMajor : dist::Indexing::ColumnMajor, id);
  dist::Scalar v;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        benchmark::DoNotOptimize(
            rt.arrays().read_element(0, id, std::vector<int>{i, j}, v));
      }
    }
  }
  state.counters["row_major"] = row_major ? 1 : 0;
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ElementSweepByIndexing)->Arg(1)->Arg(0);

}  // namespace

TDP_BENCH_MAIN();
