// Figure 3.7 — local sections with borders, and the verify_array cost
// model (§3.2.1.3, §4.2.7).
//
// The thesis notes that changing an array's borders requires reallocating
// and copying every local section — "an expensive operation" that may be
// unavoidable when one array feeds two data-parallel programs.  This bench
// quantifies that: verify with matching borders (a cheap check) vs verify
// with mismatching borders (reallocate + interior copy), as the array
// grows, plus the creation overhead of bordered vs borderless arrays.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace tdp;

void BM_VerifyMatchingBorders(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Runtime rt(4);
  dist::ArrayId id = bench::make_vector(rt, n, rt.all_procs(),
                                        dist::BorderSpec::exact({2, 2}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.arrays().verify_array(
        0, id, 1, dist::BorderSpec::exact({2, 2}), dist::Indexing::RowMajor));
  }
  state.counters["elements"] = n;
}
BENCHMARK(BM_VerifyMatchingBorders)->Arg(1024)->Arg(65536)->Arg(1048576);

void BM_VerifyMismatchReallocatesAndCopies(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Runtime rt(4);
  dist::ArrayId id = bench::make_vector(rt, n, rt.all_procs(),
                                        dist::BorderSpec::exact({2, 2}));
  bool toggle = false;
  for (auto _ : state) {
    // Alternate between the two border shapes so every iteration pays the
    // full reallocate-and-copy path.
    const std::vector<int> want = toggle ? std::vector<int>{2, 2}
                                         : std::vector<int>{1, 1};
    toggle = !toggle;
    benchmark::DoNotOptimize(rt.arrays().verify_array(
        0, id, 1, dist::BorderSpec::exact(want), dist::Indexing::RowMajor));
  }
  state.counters["elements"] = n;
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_VerifyMismatchReallocatesAndCopies)
    ->Arg(1024)
    ->Arg(65536)
    ->Arg(1048576);

void BM_CreateFree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool bordered = state.range(1) != 0;
  core::Runtime rt(4);
  const dist::BorderSpec borders = bordered
                                       ? dist::BorderSpec::exact({2, 2})
                                       : dist::BorderSpec::none();
  for (auto _ : state) {
    dist::ArrayId id;
    rt.arrays().create_array(0, dist::ElemType::Float64, {n}, rt.all_procs(),
                             {dist::DimSpec::block()}, borders,
                             dist::Indexing::RowMajor, id);
    rt.arrays().free_array(0, id);
  }
  state.counters["elements"] = n;
  state.counters["bordered"] = bordered ? 1 : 0;
}
BENCHMARK(BM_CreateFree)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({262144, 0})
    ->Args({262144, 1});

void BM_Verify2D(benchmark::State& state) {
  // 2-D arrays: the interior copy walks a multi-index per element, the
  // worst case for the copy_local path.
  const int n = static_cast<int>(state.range(0));
  core::Runtime rt(4);
  dist::ArrayId id;
  rt.arrays().create_array(0, dist::ElemType::Float64, {n, n},
                           rt.all_procs(),
                           {dist::DimSpec::block(), dist::DimSpec::block()},
                           dist::BorderSpec::exact({1, 1, 1, 1}),
                           dist::Indexing::RowMajor, id);
  bool toggle = false;
  for (auto _ : state) {
    const std::vector<int> want = toggle ? std::vector<int>{1, 1, 1, 1}
                                         : std::vector<int>{2, 2, 2, 2};
    toggle = !toggle;
    benchmark::DoNotOptimize(rt.arrays().verify_array(
        0, id, 2, dist::BorderSpec::exact(want), dist::Indexing::RowMajor));
  }
  state.counters["elements"] = static_cast<double>(n) * n;
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n) * n);
}
BENCHMARK(BM_Verify2D)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

TDP_BENCH_MAIN();
