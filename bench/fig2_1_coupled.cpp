// Figure 2.1 — coupled climate simulation.
//
// Two data-parallel simulations exchange boundary data each coupling step
// through a task-parallel top level.  Shape claims measured here:
//   * coupling the two models *concurrently* (par) costs about the wall
//     time of one model per step; alternating them sequentially costs two;
//   * the channel extension (§7.2.1) removes the per-step return to the
//     caller and wins when coupling is fine-grained.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "linalg/stencil.hpp"
#include "pcn/process.hpp"

namespace {

using namespace tdp;

constexpr int kGroup = 2;
constexpr int kCells = 4096;
constexpr int kInner = 8;

struct Coupled {
  core::Runtime rt{2 * kGroup};
  std::vector<int> ocean_procs = util::node_array(0, 1, kGroup);
  std::vector<int> atmos_procs = util::node_array(kGroup, 1, kGroup);
  dist::ArrayId ocean;
  dist::ArrayId atmos;

  Coupled() {
    linalg::register_stencil_programs(rt.programs());
    ocean = bench::make_vector(rt, kCells, ocean_procs,
                               dist::BorderSpec::exact({1, 1}));
    atmos = bench::make_vector(rt, kCells, atmos_procs,
                               dist::BorderSpec::exact({1, 1}));
    for (int i = 0; i < kCells; ++i) {
      rt.arrays().write_element(0, ocean, std::vector<int>{i},
                                dist::Scalar{80.0});
      rt.arrays().write_element(0, atmos, std::vector<int>{i},
                                dist::Scalar{10.0});
    }
  }

  void step_model(const std::vector<int>& procs, dist::ArrayId field) {
    // Simulated node compute (see bench_util.hpp) so the two models'
    // advance phases overlap on any host, as on a real multicomputer.
    bench::simulated_node_work(2.0);
    rt.call(procs, "heat_step_1d")
        .constant(0.2)
        .constant(kInner)
        .local(field)
        .status()
        .run();
  }

  void exchange_boundary() {
    dist::Scalar sea;
    dist::Scalar air;
    rt.arrays().read_element(0, ocean, std::vector<int>{kCells - 1}, sea);
    rt.arrays().read_element(0, atmos, std::vector<int>{0}, air);
    const double t = 0.5 * (dist::scalar_to_double(sea) +
                            dist::scalar_to_double(air));
    rt.arrays().write_element(0, ocean, std::vector<int>{kCells - 1},
                              dist::Scalar{t});
    rt.arrays().write_element(0, atmos, std::vector<int>{0},
                              dist::Scalar{t});
  }
};

void BM_CoupledSequentialAlternation(benchmark::State& state) {
  const int couplings = static_cast<int>(state.range(0));
  Coupled c;
  for (auto _ : state) {
    for (int s = 0; s < couplings; ++s) {
      c.step_model(c.ocean_procs, c.ocean);
      c.step_model(c.atmos_procs, c.atmos);
      c.exchange_boundary();
    }
  }
  state.counters["couplings"] = couplings;
}
BENCHMARK(BM_CoupledSequentialAlternation)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CoupledConcurrent(benchmark::State& state) {
  // The figure's arrangement: both simulations advance concurrently under
  // the task-parallel top level.
  const int couplings = static_cast<int>(state.range(0));
  Coupled c;
  for (auto _ : state) {
    for (int s = 0; s < couplings; ++s) {
      pcn::par([&] { c.step_model(c.ocean_procs, c.ocean); },
               [&] { c.step_model(c.atmos_procs, c.atmos); });
      c.exchange_boundary();
    }
  }
  state.counters["couplings"] = couplings;
}
BENCHMARK(BM_CoupledConcurrent)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
