// Figure 3.4 — concurrent distributed calls.
//
// Two task-parallel processes call two data-parallel programs on disjoint
// processor groups.  The figure's claim: the calls proceed independently
// (copies of each program communicate internally; no traffic crosses
// between the calls).  The measurable shape: running the two calls
// concurrently takes about the wall time of ONE call, while running them
// sequentially takes about TWO — i.e. a ~2x speedup that vanishes when the
// groups are forced to serialize.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "pcn/process.hpp"

namespace {

using namespace tdp;

/// A compute+communicate workload: `rounds` ring exchanges, each preceded
/// by simulated node compute (see bench_util.hpp on why wall-clock delay
/// stands in for node compute).
void register_workload(core::Runtime& rt) {
  rt.programs().add("ring_work",
                    [](spmd::SpmdContext& ctx, core::CallArgs& args) {
                      const int rounds = args.in<int>(0);
                      double acc = 0.0;
                      for (int r = 0; r < rounds; ++r) {
                        bench::simulated_node_work(0.5);
                        const int next = (ctx.index() + 1) % ctx.nprocs();
                        const int prev = (ctx.index() + ctx.nprocs() - 1) %
                                         ctx.nprocs();
                        ctx.send_value<double>(next, r, acc);
                        acc += ctx.recv_value<double>(prev, r);
                      }
                      args.reduce_f64(1)[0] = acc;
                    });
}

void BM_TwoCallsSequential(benchmark::State& state) {
  const int group = static_cast<int>(state.range(0));
  const int rounds = 20;
  core::Runtime rt(2 * group);
  register_workload(rt);
  const std::vector<int> ga = util::node_array(0, 1, group);
  const std::vector<int> gb = util::node_array(group, 1, group);
  std::vector<double> out;
  for (auto _ : state) {
    rt.call(ga, "ring_work").constant(rounds).reduce_f64(1, core::f64_max(), &out).run();
    rt.call(gb, "ring_work").constant(rounds).reduce_f64(1, core::f64_max(), &out).run();
  }
  state.counters["group"] = group;
}
BENCHMARK(BM_TwoCallsSequential)->Arg(2)->Arg(4)->UseRealTime();

void BM_TwoCallsConcurrent(benchmark::State& state) {
  const int group = static_cast<int>(state.range(0));
  const int rounds = 20;
  core::Runtime rt(2 * group);
  register_workload(rt);
  const std::vector<int> ga = util::node_array(0, 1, group);
  const std::vector<int> gb = util::node_array(group, 1, group);
  std::vector<double> out_a;
  std::vector<double> out_b;
  for (auto _ : state) {
    pcn::par(
        [&] {
          rt.call(ga, "ring_work")
              .constant(rounds)
              .reduce_f64(1, core::f64_max(), &out_a)
              .run();
        },
        [&] {
          rt.call(gb, "ring_work")
              .constant(rounds)
              .reduce_f64(1, core::f64_max(), &out_b)
              .run();
        });
  }
  state.counters["group"] = group;
}
BENCHMARK(BM_TwoCallsConcurrent)->Arg(2)->Arg(4)->UseRealTime();

void BM_FourCallsConcurrent(benchmark::State& state) {
  // Scaling the figure's idea: K independent calls on K disjoint groups.
  const int group = 2;
  const int calls = static_cast<int>(state.range(0));
  const int rounds = 20;
  core::Runtime rt(calls * group);
  register_workload(rt);
  std::vector<std::vector<int>> groups;
  for (int c = 0; c < calls; ++c) {
    groups.push_back(util::node_array(c * group, 1, group));
  }
  for (auto _ : state) {
    pcn::ProcessGroup top;
    for (int c = 0; c < calls; ++c) {
      top.spawn([&, c] {
        std::vector<double> out;
        rt.call(groups[static_cast<std::size_t>(c)], "ring_work")
            .constant(rounds)
            .reduce_f64(1, core::f64_max(), &out)
            .run();
      });
    }
    top.join();
  }
  state.counters["calls"] = calls;
}
BENCHMARK(BM_FourCallsConcurrent)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
