// Figure 3.10 — the wrapper and combine programs.
//
// Every distributed call funnels its copies' local status and reduction
// variables through pairwise combines (§5.2.2).  Series: merge cost as the
// group grows, as the reduction payload grows, and the default max status
// combine vs a user combine program.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/distributed_call.hpp"

namespace {

using namespace tdp;

void BM_StatusMergeByGroupSize(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  core::Runtime rt(p);
  rt.programs().add("status_only",
                    [](spmd::SpmdContext& ctx, core::CallArgs& args) {
                      args.status(0) = ctx.index();
                    });
  const std::vector<int> procs = rt.all_procs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rt.call(procs, "status_only").status().run());
  }
  state.counters["procs"] = p;
}
BENCHMARK(BM_StatusMergeByGroupSize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->UseRealTime();

void BM_StatusMergeUserCombine(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  core::Runtime rt(p);
  rt.programs().add("status_only2",
                    [](spmd::SpmdContext& ctx, core::CallArgs& args) {
                      args.status(0) = ctx.index();
                    });
  const std::vector<int> procs = rt.all_procs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.call(procs, "status_only2")
                                 .status(core::status_combine_min)
                                 .run());
  }
  state.counters["procs"] = p;
}
BENCHMARK(BM_StatusMergeUserCombine)->Arg(4)->Arg(16)->UseRealTime();

void BM_ReduceMergeByLength(benchmark::State& state) {
  // The thesis allows reduction variables of any length — the combine
  // program then does O(P * len) work per call.
  const int len = static_cast<int>(state.range(0));
  const int p = 8;
  core::Runtime rt(p);
  rt.programs().add("reduce_len",
                    [len](spmd::SpmdContext&, core::CallArgs& args) {
                      auto r = args.reduce_f64(0);
                      for (int i = 0; i < len; ++i) {
                        r[static_cast<std::size_t>(i)] = i;
                      }
                    });
  const std::vector<int> procs = rt.all_procs();
  std::vector<double> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.call(procs, "reduce_len")
                                 .reduce_f64(static_cast<std::size_t>(len),
                                             core::f64_sum(), &out)
                                 .run());
  }
  state.counters["len"] = len;
  state.SetBytesProcessed(state.iterations() * static_cast<long long>(len) *
                          p * static_cast<long long>(sizeof(double)));
}
BENCHMARK(BM_ReduceMergeByLength)->Arg(1)->Arg(64)->Arg(4096)->Arg(65536)->UseRealTime();

void BM_ManyReduceVariables(benchmark::State& state) {
  // Several independent reduction variables in one call (allowed: "any
  // number", §3.3.1.2) vs the same payload as one long variable.
  const int vars = static_cast<int>(state.range(0));
  const int p = 4;
  core::Runtime rt(p);
  rt.programs().add("multi_reduce",
                    [vars](spmd::SpmdContext&, core::CallArgs& args) {
                      for (int v = 0; v < vars; ++v) {
                        args.reduce_f64(static_cast<std::size_t>(v))[0] = v;
                      }
                    });
  const std::vector<int> procs = rt.all_procs();
  std::vector<std::vector<double>> outs(static_cast<std::size_t>(vars));
  for (auto _ : state) {
    core::DistributedCall call = rt.call(procs, "multi_reduce");
    for (int v = 0; v < vars; ++v) {
      call.reduce_f64(1, core::f64_sum(), &outs[static_cast<std::size_t>(v)]);
    }
    benchmark::DoNotOptimize(call.run());
  }
  state.counters["vars"] = vars;
}
BENCHMARK(BM_ManyReduceVariables)->Arg(1)->Arg(8)->Arg(64)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
