// Ablation — typed messages with selective receive (§3.4.1).
//
// The design requires selective receive so that task-parallel and
// data-parallel traffic (and different concurrent calls) never intercept
// each other's messages.  The cost is that a receive must scan past queued
// non-matching messages.  Series: receive latency as a function of the
// number of non-matching messages ahead of the match, and the end-to-end
// effect on a distributed call running while unrelated traffic is queued.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "vp/mailbox.hpp"

namespace {

using namespace tdp;

void BM_SelectiveReceiveScanDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  vp::Mailbox mb;
  // Pre-queue `depth` messages of a different comm that never match.
  for (int i = 0; i < depth; ++i) {
    vp::Message m;
    m.cls = vp::MessageClass::DataParallel;
    m.comm = 1;
    m.tag = 0;
    m.src = 0;
    mb.post(std::move(m));
  }
  for (auto _ : state) {
    vp::Message match;
    match.cls = vp::MessageClass::DataParallel;
    match.comm = 2;
    match.tag = 7;
    match.src = 3;
    mb.post(std::move(match));
    benchmark::DoNotOptimize(
        mb.receive(vp::MessageClass::DataParallel, 2, 7, 3));
  }
  state.counters["queued_ahead"] = depth;
}
BENCHMARK(BM_SelectiveReceiveScanDepth)
    ->Arg(0)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096);

void BM_DistributedCallWithForeignTrafficQueued(benchmark::State& state) {
  // A call's copies must skip over queued messages belonging to another
  // (suspended) call.  This is the price of comm scoping; the alternative —
  // crosstalk — would be incorrect, not merely slow.
  const int foreign = static_cast<int>(state.range(0));
  core::Runtime rt(4);
  rt.programs().add("ring_once",
                    [](spmd::SpmdContext& ctx, core::CallArgs&) {
                      const int next = (ctx.index() + 1) % ctx.nprocs();
                      const int prev = (ctx.index() + ctx.nprocs() - 1) %
                                       ctx.nprocs();
                      ctx.send_value<int>(next, 0, 1);
                      (void)ctx.recv_value<int>(prev, 0);
                    });
  // Queue foreign-comm messages on every processor's mailbox.
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < foreign; ++i) {
      vp::Message m;
      m.cls = vp::MessageClass::DataParallel;
      m.comm = rt.machine().next_comm();
      m.tag = 0;
      m.src = 0;
      rt.machine().send(p, std::move(m));
    }
  }
  const std::vector<int> procs = rt.all_procs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.call(procs, "ring_once").run());
  }
  state.counters["foreign_msgs"] = foreign;
}
BENCHMARK(BM_DistributedCallWithForeignTrafficQueued)
    ->Arg(0)
    ->Arg(64)
    ->Arg(1024);

}  // namespace

TDP_BENCH_MAIN();
