// Ablation — typed messages with selective receive (§3.4.1).
//
// The design requires selective receive so that task-parallel and
// data-parallel traffic (and different concurrent calls) never intercept
// each other's messages.  The cost is that a receive must scan past queued
// non-matching messages.  Series: receive latency as a function of the
// number of non-matching messages ahead of the match, the end-to-end
// effect on a distributed call running while unrelated traffic is queued,
// and the indexed-vs-linear A/B on the contended many-waiter workload the
// indexed mailbox exists for.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "vp/mailbox.hpp"

namespace {

using namespace tdp;

void BM_SelectiveReceiveScanDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  vp::Mailbox mb;
  // Pre-queue `depth` messages of a different comm that never match.
  for (int i = 0; i < depth; ++i) {
    vp::Message m;
    m.cls = vp::MessageClass::DataParallel;
    m.comm = 1;
    m.tag = 0;
    m.src = 0;
    mb.post(std::move(m));
  }
  for (auto _ : state) {
    vp::Message match;
    match.cls = vp::MessageClass::DataParallel;
    match.comm = 2;
    match.tag = 7;
    match.src = 3;
    mb.post(std::move(match));
    benchmark::DoNotOptimize(
        mb.receive(vp::MessageClass::DataParallel, 2, 7, 3));
  }
  state.counters["queued_ahead"] = depth;
}
BENCHMARK(BM_SelectiveReceiveScanDepth)
    ->Arg(0)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096);

void BM_DistributedCallWithForeignTrafficQueued(benchmark::State& state) {
  // A call's copies must skip over queued messages belonging to another
  // (suspended) call.  This is the price of comm scoping; the alternative —
  // crosstalk — would be incorrect, not merely slow.
  const int foreign = static_cast<int>(state.range(0));
  core::Runtime rt(4);
  rt.programs().add("ring_once",
                    [](spmd::SpmdContext& ctx, core::CallArgs&) {
                      const int next = (ctx.index() + 1) % ctx.nprocs();
                      const int prev = (ctx.index() + ctx.nprocs() - 1) %
                                       ctx.nprocs();
                      ctx.send_value<int>(next, 0, 1);
                      (void)ctx.recv_value<int>(prev, 0);
                    });
  // Queue foreign-comm messages on every processor's mailbox.
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < foreign; ++i) {
      vp::Message m;
      m.cls = vp::MessageClass::DataParallel;
      m.comm = rt.machine().next_comm();
      m.tag = 0;
      m.src = 0;
      rt.machine().send(p, std::move(m));
    }
  }
  const std::vector<int> procs = rt.all_procs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.call(procs, "ring_once").run());
  }
  state.counters["foreign_msgs"] = foreign;
}
BENCHMARK(BM_DistributedCallWithForeignTrafficQueued)
    ->Arg(0)
    ->Arg(64)
    ->Arg(1024);

// The workload the indexed mailbox targets: many mailboxes, several blocked
// selective receivers per mailbox, a standing queue of non-matching traffic.
// The linear path pays notify_all (every sleeper wakes per post) times a
// full-queue rescan per wake — O(W * N) work per delivery; the indexed path
// wakes exactly the matching waiter and resumes its bucket cursor past the
// noise.  Arg: 0 = linear (baseline), 1 = indexed.
void BM_ContendedSelectiveReceive(benchmark::State& state) {
  const bool indexed = state.range(0) != 0;
  vp::force_mailbox_mode(indexed ? vp::MailboxMode::Indexed
                                 : vp::MailboxMode::Linear);
  constexpr int kBoxes = 8;    // distinct VPs
  constexpr int kWaiters = 8;  // blocked selective receivers per VP
  constexpr int kNoise = 128;  // standing non-matching queue depth per VP
  {
    // Mode is snapshotted at construction, so the mailboxes are built
    // inside the force window.
    std::vector<std::unique_ptr<vp::Mailbox>> boxes;
    boxes.reserve(kBoxes);
    for (int b = 0; b < kBoxes; ++b) {
      boxes.push_back(std::make_unique<vp::Mailbox>(b));
      for (int i = 0; i < kNoise; ++i) {
        vp::Message m;
        m.cls = vp::MessageClass::DataParallel;
        m.comm = 999;  // never matched by any waiter
        m.tag = 0;
        m.src = 0;
        boxes.back()->post(std::move(m));
      }
    }
    std::atomic<std::uint64_t> delivered{0};
    std::vector<std::thread> waiters;
    waiters.reserve(kBoxes * kWaiters);
    for (int b = 0; b < kBoxes; ++b) {
      for (int w = 0; w < kWaiters; ++w) {
        waiters.emplace_back([&, b, w] {
          try {
            for (;;) {
              (void)boxes[static_cast<std::size_t>(b)]->receive(
                  vp::MessageClass::DataParallel, 1, w, -1);
              delivered.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const vp::MailboxClosed&) {
            // benchmark teardown
          }
        });
      }
    }
    for (auto _ : state) {
      const std::uint64_t start = delivered.load(std::memory_order_relaxed);
      for (int b = 0; b < kBoxes; ++b) {
        for (int w = 0; w < kWaiters; ++w) {
          vp::Message m;
          m.cls = vp::MessageClass::DataParallel;
          m.comm = 1;
          m.tag = w;
          m.src = 0;
          boxes[static_cast<std::size_t>(b)]->post(std::move(m));
        }
      }
      // One message per waiter was posted; spin until every one landed.
      while (delivered.load(std::memory_order_relaxed) - start <
             static_cast<std::uint64_t>(kBoxes * kWaiters)) {
        std::this_thread::yield();
      }
    }
    for (auto& box : boxes) box->close();
    for (auto& t : waiters) t.join();
    state.SetItemsProcessed(state.iterations() * kBoxes * kWaiters);
    state.SetLabel(indexed ? "indexed" : "linear");
    state.counters["waiters"] = kBoxes * kWaiters;
    state.counters["noise_depth"] = kNoise;
  }
  vp::unforce_mailbox_mode();
}
BENCHMARK(BM_ContendedSelectiveReceive)
    ->ArgName("indexed")
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
