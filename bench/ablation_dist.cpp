// Ablation — sharded arrays and load-driven rebalancing.
//
// The in-process array manager serialises every owner-side access on the
// owning node's monitor, so a workload that concentrates its traffic on
// one processor's shards queues on one mutex — the same hot-node pathology
// a real multicomputer shows when one node owns all the popular data.
// Series:
//   * read_shard / migrate_shard micro-costs (the per-request and per-move
//     prices the repartitioner trades between);
//   * the recovery scenario: requester threads drive (a) uniform traffic,
//     (b) 90%-hot skewed traffic against the initial placement, and
//     (c) the same skew after one load-driven rebalance has spread the hot
//     shards across the pool.  The greppable summary line
//
//       DIST_RECOVERY uniform=... skewed=... rebalanced=... ratio=R ok=0|1
//
//     reports rebalanced-vs-uniform throughput; ok=1 means the skewed
//     workload recovered to within 20% of the uniform baseline (the ISSUE
//     acceptance bar).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dist/array_manager.hpp"
#include "util/node_array.hpp"
#include "vp/machine.hpp"
#include "vp/payload.hpp"

namespace {

using namespace tdp;

constexpr int kProcs = 4;
constexpr int kShards = 32;            // 8 shards per processor initially
constexpr int kShardDoubles = 2048;    // 16 KiB per shard read
constexpr int kThreads = 4;
constexpr int kReadsPerThread = 4000;

dist::ArrayId make_sharded(dist::ArrayManager& am) {
  dist::ArrayId id;
  const Status st = am.create_array(
      0, dist::ElemType::Float64, {kShards * kShardDoubles},
      util::iota_nodes(kProcs), {dist::DimSpec::block_n(kShards)},
      dist::BorderSpec::none(), dist::Indexing::RowMajor, id);
  if (st != Status::Ok) std::abort();
  return id;
}

// Deterministic per-thread shard picker: `hot` in [0,1] is the fraction of
// reads aimed at the shards processor 0 owns at creation (ranks ≡ 0 mod
// kProcs); the rest spread uniformly.
struct ShardPicker {
  std::uint64_t state;
  double hot;

  explicit ShardPicker(int thread, double hot_fraction)
      : state(0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(thread + 1)),
        hot(hot_fraction) {}

  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }

  long long operator()() {
    const std::uint64_t r = next();
    if (static_cast<double>(r % 1000) < hot * 1000.0) {
      return static_cast<long long>((r >> 10) % (kShards / kProcs)) * kProcs;
    }
    return static_cast<long long>((r >> 10) % kShards);
  }
};

// Drives kThreads requester threads of `reads` shard reads each and
// returns the aggregate throughput in reads per second.
double drive(dist::ArrayManager& am, dist::ArrayId id, double hot,
             int reads) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&am, id, hot, reads, t, &failures] {
      ShardPicker pick(t, hot);
      for (int i = 0; i < reads; ++i) {
        vp::Payload p;
        if (am.read_shard(t % kProcs, id, pick(), p) != Status::Ok) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (failures.load() != 0) std::abort();
  return static_cast<double>(kThreads) * reads / elapsed.count();
}

// --------------------------------------------------------- Micro-costs ----

void BM_ReadShard(benchmark::State& state) {
  vp::Machine machine(kProcs);
  dist::ArrayManager am(machine);
  const dist::ArrayId id = make_sharded(am);
  long long shard = 0;
  for (auto _ : state) {
    vp::Payload p;
    if (am.read_shard(0, id, shard, p) != Status::Ok) std::abort();
    benchmark::DoNotOptimize(p.data());
    shard = (shard + 1) % kShards;
  }
  state.counters["shard_bytes"] = kShardDoubles * sizeof(double);
}
BENCHMARK(BM_ReadShard);

void BM_MigrateShard(benchmark::State& state) {
  vp::Machine machine(kProcs);
  dist::ArrayManager am(machine);
  const dist::ArrayId id = make_sharded(am);
  int to = 1;
  for (auto _ : state) {
    // Bounce shard 0 between processors: every iteration is a real move
    // (quiesce, one section copy, epoch flip on every replica).
    if (am.migrate_shard(0, id, 0, to) != Status::Ok) std::abort();
    to = to == 1 ? 2 : 1;
  }
  state.counters["shard_bytes"] = kShardDoubles * sizeof(double);
}
BENCHMARK(BM_MigrateShard);

// ---------------------------------------------------- Recovery scenario ----

void BM_SkewRecovery(benchmark::State& state) {
  double uniform = 0.0;
  double skewed = 0.0;
  double rebalanced = 0.0;
  int moved = 0;
  for (auto _ : state) {
    // Uniform baseline on its own manager so its traffic never pollutes
    // the skewed array's counters.
    {
      vp::Machine machine(kProcs);
      dist::ArrayManager am(machine);
      const dist::ArrayId id = make_sharded(am);
      drive(am, id, 0.0, kReadsPerThread / 4);  // warm
      uniform = drive(am, id, 0.0, kReadsPerThread);
    }
    vp::Machine machine(kProcs);
    dist::ArrayManager am(machine);
    const dist::ArrayId id = make_sharded(am);
    drive(am, id, 0.9, kReadsPerThread / 4);  // warm
    // (b) skewed against the initial placement: processor 0 owns every hot
    // shard, so its node monitor is the bottleneck.  This phase is also
    // the traffic window the repartitioner will consume.
    skewed = drive(am, id, 0.9, kReadsPerThread);
    if (am.rebalance(0, id, /*max_ratio=*/1.25, &moved) != Status::Ok) {
      std::abort();
    }
    // (c) the identical skew after the hot shards spread across the pool.
    rebalanced = drive(am, id, 0.9, kReadsPerThread);
  }
  const double ratio = uniform > 0.0 ? rebalanced / uniform : 0.0;
  const bool ok = ratio >= 0.8;
  state.counters["uniform_reads_s"] = uniform;
  state.counters["skewed_reads_s"] = skewed;
  state.counters["rebalanced_reads_s"] = rebalanced;
  state.counters["shards_moved"] = moved;
  state.counters["recovery_ratio"] = ratio;
  state.counters["ok"] = ok ? 1.0 : 0.0;
  std::printf(
      "DIST_RECOVERY uniform=%.0f skewed=%.0f rebalanced=%.0f moved=%d "
      "ratio=%.3f ok=%d\n",
      uniform, skewed, rebalanced, moved, ratio, ok ? 1 : 0);
  std::fflush(stdout);
}
BENCHMARK(BM_SkewRecovery)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

TDP_BENCH_MAIN();
