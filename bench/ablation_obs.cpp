// Ablation — price of the observability plane on the distributed-call path.
//
// The flight-recorder design claims always-on observability is cheap enough
// to leave enabled in production runs.  Series, over the same empty-call
// workload (the most instrumentation-dense path: every call marshals,
// spawns, sends, receives, and combines under trace spans and metric
// bumps):
//
//   (a) TDP_OBS off — the disabled path is one relaxed load + branch per
//       instrumentation site;
//   (b) keep-first tracing — the historical post-mortem mode: wait-free
//       slot claims until capacity, then the drop path;
//   (c) ring tracing — the flight recorder: every emit takes the per-shard
//       ring mutex (uncontended by construction) and overwrites the oldest
//       slot, so the cost never changes with run length;
//   (d) ring + telemetry sampler — (c) plus the background sampler on an
//       aggressive 10 ms period (25x the default rate), snapshotting the
//       registry and per-VP wait state while calls run;
//   (e) ring + sampler + per-call attribution armed — (d) with a slow-call
//       threshold set, so every call runs the CallTable ledger (begin,
//       marshal/exec folds, per-delivery queue/blocked accounting, end)
//       and the exemplar reservoir admission check.  The threshold is far
//       above the workload's latency, so captures stop once the top-K
//       reservoir fills — the steady-state cost, which the acceptance bar
//       requires within noise of (d).
//
// The acceptance bar for the live plane is (d) within 5% of (a).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/distributed_call.hpp"
#include "obs/attr.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace tdp;

constexpr int kProcs = 4;

/// The measured region: empty distributed calls on a fresh runtime.
void run_call_workload(benchmark::State& state) {
  core::Runtime rt(kProcs);
  rt.programs().add("noop", [](spmd::SpmdContext&, core::CallArgs&) {});
  const std::vector<int> procs = rt.all_procs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.call(procs, "noop").run());
  }
  state.counters["procs"] = kProcs;
  // Quiet the Runtime destructor's shutdown flush (untimed, but it would
  // interleave a summary and a trace file with every series).
  obs::set_enabled(false);
}

/// Leaves the process as the next benchmark expects to find it: tracing
/// off, buffers empty, sampler stopped (also keeps the atexit trace flush
/// quiet after the last series).
void obs_quiesce() {
  obs::Telemetry::instance().stop();
  obs::Telemetry::instance().reset_for_test();
  obs::set_enabled(false);
  obs::set_trace_mode(obs::TraceMode::KeepFirst);
  obs::Tracer::instance().reset();
  obs::Registry::instance().reset_values();
  obs::CallTable::instance().reset_for_test();
}

void BM_CallObsOff(benchmark::State& state) {
  obs::set_enabled(false);
  run_call_workload(state);
}
BENCHMARK(BM_CallObsOff)->UseRealTime();

void BM_CallObsKeepFirst(benchmark::State& state) {
  obs::set_enabled(true);
  obs::set_trace_mode(obs::TraceMode::KeepFirst);
  obs::Tracer::instance().reset();
  run_call_workload(state);
  state.counters["recorded"] =
      static_cast<double>(obs::Tracer::instance().recorded());
  state.counters["dropped"] =
      static_cast<double>(obs::Tracer::instance().dropped());
  obs_quiesce();
}
BENCHMARK(BM_CallObsKeepFirst)->UseRealTime();

void BM_CallObsRing(benchmark::State& state) {
  obs::set_enabled(true);
  obs::set_trace_mode(obs::TraceMode::Ring);
  obs::Tracer::instance().reset();
  run_call_workload(state);
  state.counters["recorded"] =
      static_cast<double>(obs::Tracer::instance().recorded());
  state.counters["overwritten"] =
      static_cast<double>(obs::Tracer::instance().overwritten());
  obs_quiesce();
}
BENCHMARK(BM_CallObsRing)->UseRealTime();

void BM_CallObsRingPlusSampler(benchmark::State& state) {
  obs::set_enabled(true);
  obs::set_trace_mode(obs::TraceMode::Ring);
  obs::Tracer::instance().reset();
  obs::Telemetry::instance().start(10);  // 25x the default sampling rate
  run_call_workload(state);
  state.counters["recorded"] =
      static_cast<double>(obs::Tracer::instance().recorded());
  state.counters["overwritten"] =
      static_cast<double>(obs::Tracer::instance().overwritten());
  state.counters["samples"] =
      static_cast<double>(obs::Telemetry::instance().snapshot().samples);
  obs_quiesce();
}
BENCHMARK(BM_CallObsRingPlusSampler)->UseRealTime();

void BM_CallObsRingSamplerAttr(benchmark::State& state) {
  obs::set_enabled(true);
  obs::set_trace_mode(obs::TraceMode::Ring);
  obs::Tracer::instance().reset();
  obs::CallTable::instance().reset_for_test();
  // Arm capture with a threshold no empty call reaches: the reservoir
  // fills with the first kMaxExemplars completions, then admission is a
  // strictly-slower check that near-identical calls keep failing — the
  // snapshot path goes quiet and the ledger cost is what's measured.
  obs::CallTable::instance().set_slow_threshold_ms(60000);
  obs::Telemetry::instance().start(10);
  run_call_workload(state);
  state.counters["recorded"] =
      static_cast<double>(obs::Tracer::instance().recorded());
  state.counters["overwritten"] =
      static_cast<double>(obs::Tracer::instance().overwritten());
  state.counters["calls_tracked"] =
      static_cast<double>(obs::CallTable::instance().completed());
  state.counters["exemplars"] =
      static_cast<double>(obs::CallTable::instance().captured());
  obs_quiesce();
}
BENCHMARK(BM_CallObsRingSamplerAttr)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
