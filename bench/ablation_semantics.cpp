// Ablation — the cost of multiple-assignment semantics (§1.2.5).
//
// Preserving "all right-hand sides see pre-statement values" on an MIMD
// implementation costs a whole-vector snapshot (allgather) per statement.
// Independent parallel loops need none.  Series: per-element cost of a
// multiple-assignment statement vs a parallel_for as the vector grows, and
// vs the (incorrect) naive in-place evaluation — quantifying what the
// semantic guarantee costs and what cutting the corner would buy.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "dp/forall.hpp"
#include "pcn/process.hpp"
#include "spmd/context.hpp"

namespace {

using namespace tdp;

constexpr int kProcs = 4;

/// Runs `body` as one SPMD program over kProcs processors.
void run_group(vp::Machine& machine,
               const std::function<void(spmd::SpmdContext&)>& body) {
  const std::uint64_t comm = machine.next_comm();
  const std::vector<int> procs = util::iota_nodes(kProcs);
  pcn::ProcessGroup group;
  for (int i = 0; i < kProcs; ++i) {
    group.spawn_on(machine, i, [&, i] {
      spmd::SpmdContext ctx(machine, comm, procs, i);
      body(ctx);
    });
  }
  group.join();
}

void BM_MultipleAssignRotate(benchmark::State& state) {
  const int nloc = static_cast<int>(state.range(0));
  vp::Machine machine(kProcs);
  for (auto _ : state) {
    run_group(machine, [&](spmd::SpmdContext& ctx) {
      std::vector<double> local(static_cast<std::size_t>(nloc), 1.0);
      dp::multiple_assign(ctx, local,
                          [](const dp::OldValues& old, long long g) {
                            const long long n = old.size();
                            return old((g - 1 + n) % n);
                          });
      benchmark::DoNotOptimize(local.data());
    });
  }
  state.counters["nloc"] = nloc;
  state.SetItemsProcessed(state.iterations() * nloc * kProcs);
}
BENCHMARK(BM_MultipleAssignRotate)->Arg(256)->Arg(4096)->Arg(65536)->UseRealTime();

void BM_ParallelForSameWork(benchmark::State& state) {
  const int nloc = static_cast<int>(state.range(0));
  vp::Machine machine(kProcs);
  for (auto _ : state) {
    run_group(machine, [&](spmd::SpmdContext& ctx) {
      std::vector<double> local(static_cast<std::size_t>(nloc), 1.0);
      dp::parallel_for(ctx, local, [](long long g, double own) {
        return own + static_cast<double>(g);
      });
      benchmark::DoNotOptimize(local.data());
    });
  }
  state.counters["nloc"] = nloc;
  state.SetItemsProcessed(state.iterations() * nloc * kProcs);
}
BENCHMARK(BM_ParallelForSameWork)->Arg(256)->Arg(4096)->Arg(65536)->UseRealTime();

void BM_NaiveInPlaceRotate(benchmark::State& state) {
  // The incorrect shortcut, measured to show what the guarantee costs
  // relative to cheating (the answer: the same allgather dominates, so the
  // guarantee is nearly free at this layer — the *statement* snapshot, not
  // the write discipline, is the expensive part).
  const int nloc = static_cast<int>(state.range(0));
  vp::Machine machine(kProcs);
  for (auto _ : state) {
    run_group(machine, [&](spmd::SpmdContext& ctx) {
      std::vector<double> local(static_cast<std::size_t>(nloc), 1.0);
      dp::multiple_assign_naive_in_place(
          ctx, local, [](const dp::OldValues& old, long long g) {
            const long long n = old.size();
            return old((g - 1 + n) % n);
          });
      benchmark::DoNotOptimize(local.data());
    });
  }
  state.counters["nloc"] = nloc;
  state.SetItemsProcessed(state.iterations() * nloc * kProcs);
}
BENCHMARK(BM_NaiveInPlaceRotate)->Arg(256)->Arg(4096)->Arg(65536)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
