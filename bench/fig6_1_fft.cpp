// Figure 6.1 / §6.2 — polynomial multiplication using a pipeline and FFT.
//
// Series: the distributed FFT kernel's scaling in transform size and group
// size, the two concurrent inverse FFTs of a pair vs doing them one after
// another (the fork in fig 6.1), and end-to-end products per second through
// the three-stage arrangement.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "fft/fft.hpp"
#include "pcn/process.hpp"

namespace {

using namespace tdp;

struct FftFixture {
  int n;
  int group;
  core::Runtime rt;
  std::vector<int> procs;
  dist::ArrayId data;
  dist::ArrayId eps;

  FftFixture(int n_, int group_, int base = 0, int total = 0)
      : n(n_), group(group_), rt(total > 0 ? total : group_) {
    fft::register_programs(rt.programs());
    procs = util::node_array(base, 1, group);
    data = bench::make_vector(rt, 2 * n, procs);
    rt.arrays().create_array(0, dist::ElemType::Float64, {2 * n, group},
                             procs,
                             {dist::DimSpec::star(), dist::DimSpec::block()},
                             dist::BorderSpec::none(),
                             dist::Indexing::ColumnMajor, eps);
    rt.call(procs, "compute_roots").constant(n).local(eps).run();
  }

  void transform(bool forward) {
    rt.call(procs, forward ? "fft_natural" : "fft_reverse")
        .constant(procs)
        .constant(group)
        .index()
        .constant(n)
        .constant(forward ? fft::kForward : fft::kInverse)
        .local(eps)
        .local(data)
        .run();
  }
};

void BM_DistributedFftBySize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  FftFixture fx(n, 4);
  for (auto _ : state) {
    fx.transform(false);
  }
  state.counters["n"] = n;
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DistributedFftBySize)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)->UseRealTime();

void BM_DistributedFftByGroup(benchmark::State& state) {
  const int group = static_cast<int>(state.range(0));
  FftFixture fx(16384, group);
  for (auto _ : state) {
    fx.transform(false);
  }
  state.counters["group"] = group;
}
BENCHMARK(BM_DistributedFftByGroup)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_PairInverseFftsSequential(benchmark::State& state) {
  // The two inverse FFTs of one polynomial pair, one after the other.
  const int n = 8192;
  FftFixture fa(n, 2, 0, 4);
  // Second transform array on the other half of the same machine: build it
  // in fa's runtime for a fair comparison.
  const std::vector<int> procs_b = util::node_array(2, 1, 2);
  dist::ArrayId data_b = bench::make_vector(fa.rt, 2 * n, procs_b);
  dist::ArrayId eps_b;
  fa.rt.arrays().create_array(0, dist::ElemType::Float64, {2 * n, 2},
                              procs_b,
                              {dist::DimSpec::star(), dist::DimSpec::block()},
                              dist::BorderSpec::none(),
                              dist::Indexing::ColumnMajor, eps_b);
  fa.rt.call(procs_b, "compute_roots").constant(n).local(eps_b).run();
  auto run_b = [&] {
    fa.rt.call(procs_b, "fft_reverse")
        .constant(procs_b)
        .constant(2)
        .index()
        .constant(n)
        .constant(fft::kInverse)
        .local(eps_b)
        .local(data_b)
        .run();
  };
  for (auto _ : state) {
    bench::simulated_node_work(4.0);
    fa.transform(false);
    bench::simulated_node_work(4.0);
    run_b();
  }
}
BENCHMARK(BM_PairInverseFftsSequential)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PairInverseFftsConcurrent(benchmark::State& state) {
  // Fig 6.1's fork: the two inverse FFTs of a pair run concurrently on
  // disjoint groups — expect close to half the sequential time.
  const int n = 8192;
  FftFixture fa(n, 2, 0, 4);
  const std::vector<int> procs_b = util::node_array(2, 1, 2);
  dist::ArrayId data_b = bench::make_vector(fa.rt, 2 * n, procs_b);
  dist::ArrayId eps_b;
  fa.rt.arrays().create_array(0, dist::ElemType::Float64, {2 * n, 2},
                              procs_b,
                              {dist::DimSpec::star(), dist::DimSpec::block()},
                              dist::BorderSpec::none(),
                              dist::Indexing::ColumnMajor, eps_b);
  fa.rt.call(procs_b, "compute_roots").constant(n).local(eps_b).run();
  for (auto _ : state) {
    pcn::par(
        [&] {
          bench::simulated_node_work(4.0);
          fa.transform(false);
        },
        [&] {
          bench::simulated_node_work(4.0);
          fa.rt.call(procs_b, "fft_reverse")
              .constant(procs_b)
              .constant(2)
              .index()
              .constant(n)
              .constant(fft::kInverse)
              .local(eps_b)
              .local(data_b)
              .run();
        });
  }
}
BENCHMARK(BM_PairInverseFftsConcurrent)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
