// Ablation — cost of the fault-injection hook on the send path.
//
// Machine::send consults the injector only when a plan is installed, so the
// healthy-path price is one pointer test.  Series: raw send throughput with
// (a) no injector, (b) an installed but never-firing plan (every message
// takes the decision-word path and delivers), and (c) a dropping plan (the
// decision fires and the message is discarded).  The gap between (a) and
// (b) is what every user pays once they opt into TDP_FAULT; the gap between
// (b) and (c) bounds the bookkeeping per injected fault.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "fault/plan.hpp"
#include "vp/machine.hpp"

namespace {

using namespace tdp;

vp::Message make_message(int tag) {
  vp::Message m;
  m.cls = vp::MessageClass::DataParallel;
  m.comm = 1;
  m.tag = tag;
  m.src = 0;
  return m;
}

void drain(vp::Machine& machine, int dst) {
  while (machine.mailbox(dst).pending() > 0) {
    (void)machine.mailbox(dst).receive([](const vp::Message&) { return true; });
  }
}

void BM_SendNoInjector(benchmark::State& state) {
  vp::Machine machine(2);
  int tag = 0;
  for (auto _ : state) {
    machine.send(1, make_message(tag++));
    if ((tag & 1023) == 0) drain(machine, 1);
  }
  drain(machine, 1);
}
BENCHMARK(BM_SendNoInjector);

void BM_SendInjectorInstalledNeverFires(benchmark::State& state) {
  vp::Machine machine(2);
  // A plan with all probabilities zero is inactive (no injector); a
  // vanishingly rare drop keeps the injector on the path without it firing
  // in any run of realistic length.
  fault::Plan plan;
  plan.drop = 1e-12;
  plan.seed = 42;
  machine.set_fault_plan(plan);
  int tag = 0;
  for (auto _ : state) {
    machine.send(1, make_message(tag++));
    if ((tag & 1023) == 0) drain(machine, 1);
  }
  drain(machine, 1);
}
BENCHMARK(BM_SendInjectorInstalledNeverFires);

void BM_SendInjectorAlwaysDrops(benchmark::State& state) {
  vp::Machine machine(2);
  fault::Plan plan;
  plan.drop = 1.0;
  plan.seed = 42;
  machine.set_fault_plan(plan);
  int tag = 0;
  for (auto _ : state) {
    machine.send(1, make_message(tag++));
  }
  state.counters["drops"] =
      static_cast<double>(machine.faults()->counts().drops);
}
BENCHMARK(BM_SendInjectorAlwaysDrops);

}  // namespace

TDP_BENCH_MAIN();
