// Shared setup helpers for the figure-reproduction benchmarks.
#pragma once

#include <chrono>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "dist/types.hpp"
#include "util/node_array.hpp"

namespace tdp::bench {

/// Creates a block-distributed 1-D double array over `procs`.
inline dist::ArrayId make_vector(core::Runtime& rt, int n,
                                 const std::vector<int>& procs,
                                 const dist::BorderSpec& borders =
                                     dist::BorderSpec::none()) {
  dist::ArrayId id;
  rt.arrays().create_array(0, dist::ElemType::Float64, {n}, procs,
                           {dist::DimSpec::block()}, borders,
                           dist::Indexing::RowMajor, id);
  return id;
}

/// Creates a row-distributed 2-D double array ((block, *)) over `procs`.
inline dist::ArrayId make_matrix_rows(core::Runtime& rt, int rows, int cols,
                                      const std::vector<int>& procs,
                                      const dist::BorderSpec& borders =
                                          dist::BorderSpec::none()) {
  dist::ArrayId id;
  rt.arrays().create_array(0, dist::ElemType::Float64, {rows, cols}, procs,
                           {dist::DimSpec::block(), dist::DimSpec::star()},
                           borders, dist::Indexing::RowMajor, id);
  return id;
}

/// Simulated per-node compute time.
///
/// The virtual processors model a multicomputer's nodes; the concurrency
/// shapes the thesis figures claim (pipeline overlap, concurrent calls on
/// disjoint groups, independent frames) are about overlap of *node* time.
/// On a host with fewer physical cores than simulated processors, CPU-bound
/// node work serialises and hides the shape, so the overlap benchmarks
/// represent node compute as wall-clock delay — which overlaps across
/// simulated nodes regardless of host core count, exactly as node compute
/// overlaps on a real multicomputer.
inline void simulated_node_work(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace tdp::bench
