// Shared setup helpers for the figure-reproduction benchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "dist/types.hpp"
#include "util/node_array.hpp"

namespace tdp::bench {

/// Creates a block-distributed 1-D double array over `procs`.
inline dist::ArrayId make_vector(core::Runtime& rt, int n,
                                 const std::vector<int>& procs,
                                 const dist::BorderSpec& borders =
                                     dist::BorderSpec::none()) {
  dist::ArrayId id;
  rt.arrays().create_array(0, dist::ElemType::Float64, {n}, procs,
                           {dist::DimSpec::block()}, borders,
                           dist::Indexing::RowMajor, id);
  return id;
}

/// Creates a row-distributed 2-D double array ((block, *)) over `procs`.
inline dist::ArrayId make_matrix_rows(core::Runtime& rt, int rows, int cols,
                                      const std::vector<int>& procs,
                                      const dist::BorderSpec& borders =
                                          dist::BorderSpec::none()) {
  dist::ArrayId id;
  rt.arrays().create_array(0, dist::ElemType::Float64, {rows, cols}, procs,
                           {dist::DimSpec::block(), dist::DimSpec::star()},
                           borders, dist::Indexing::RowMajor, id);
  return id;
}

/// Simulated per-node compute time.
///
/// The virtual processors model a multicomputer's nodes; the concurrency
/// shapes the thesis figures claim (pipeline overlap, concurrent calls on
/// disjoint groups, independent frames) are about overlap of *node* time.
/// On a host with fewer physical cores than simulated processors, CPU-bound
/// node work serialises and hides the shape, so the overlap benchmarks
/// represent node compute as wall-clock delay — which overlaps across
/// simulated nodes regardless of host core count, exactly as node compute
/// overlaps on a real multicomputer.
inline void simulated_node_work(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Machine-readable result lines for the perf trajectory.  In addition to
/// the normal console table, every finished (non-aggregate) run prints one
///
///   BENCH_JSON {"name":...,"iterations":N,"ns_per_op":X,"procs":P,...}
///
/// line to stdout, carrying every user counter the benchmark set (the
/// figure benches set "procs"; message-counting benches set "messages").
/// TDP_BENCH_JSON steers the lines: unset or "1" prints to stdout only,
/// "0" suppresses them, and any other value is a file path the lines are
/// appended to (in addition to stdout) — so a sweep driver can accumulate
/// results across many benchmark binaries into one file.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    const char* env = std::getenv("TDP_BENCH_JSON");
    if (env != nullptr && std::strcmp(env, "0") == 0) return;
    std::FILE* sink = nullptr;
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "1") != 0) {
      sink = std::fopen(env, "a");
      if (sink == nullptr) {
        std::fprintf(stderr, "bench: cannot append BENCH_JSON to %s\n", env);
      }
    }
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time * 1e9 /
                    static_cast<double>(run.iterations)
              : 0.0;
      std::string line = "BENCH_JSON {\"name\":\"" + run.benchmark_name() +
                         "\",\"iterations\":" + std::to_string(run.iterations) +
                         ",\"ns_per_op\":" + fmt(ns_per_op);
      for (const auto& [name, counter] : run.counters) {
        line += ",\"" + name + "\":" + fmt(counter.value);
      }
      line += "}";
      std::fprintf(stdout, "%s\n", line.c_str());
      std::fflush(stdout);
      if (sink != nullptr) std::fprintf(sink, "%s\n", line.c_str());
    }
    if (sink != nullptr) std::fclose(sink);
  }

 private:
  static std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }
};

}  // namespace tdp::bench

/// Drop-in replacement for BENCHMARK_MAIN() that routes results through
/// JsonLineReporter.
#define TDP_BENCH_MAIN()                                                   \
  int main(int argc, char** argv) {                                        \
    ::benchmark::Initialize(&argc, argv);                                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;    \
    ::tdp::bench::JsonLineReporter reporter;                               \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                        \
    ::benchmark::Shutdown();                                               \
    return 0;                                                              \
  }                                                                        \
  int main(int, char**)
