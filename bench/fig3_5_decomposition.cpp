// Figures 3.5/3.6 — partitioning and decomposing an array.
//
// Reproduces the thesis's worked decomposition table (400x200 array over 16
// processors) and quantifies why the decomposition choice matters: the halo
// (overlap-area) volume of a 5-point stencil differs per shape, and so does
// the measured sweep time of a data-parallel Jacobi program over each
// decomposition of the same global array.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "dist/layout.hpp"
#include "linalg/stencil.hpp"

namespace {

using namespace tdp;

struct Shape {
  const char* label;
  std::vector<dist::DimSpec> spec;
};

const Shape kShapes[] = {
    {"(block, block)", {dist::DimSpec::block(), dist::DimSpec::block()}},
    {"(block(2), block(8))",
     {dist::DimSpec::block_n(2), dist::DimSpec::block_n(8)}},
    {"(block, *)", {dist::DimSpec::block(), dist::DimSpec::star()}},
    {"(*, block)", {dist::DimSpec::star(), dist::DimSpec::block()}},
};

/// Prints the thesis's figure-3.6 table plus per-shape halo volume for a
/// one-cell 5-point stencil: every interior section exchanges its faces.
void print_decomposition_table() {
  const std::vector<int> dims{400, 200};
  const int nprocs = 16;
  std::printf("figure 3.6: decompositions of a 400x200 array, 16 procs\n");
  std::printf("%-22s %-10s %-12s %s\n", "decomposition", "grid",
              "local dims", "halo doubles/section (5-pt stencil)");
  for (const Shape& s : kShapes) {
    std::vector<int> grid;
    if (!ok(dist::compute_grid(dims, nprocs, s.spec, grid))) {
      std::printf("%-22s invalid\n", s.label);
      continue;
    }
    std::vector<int> local = dist::local_dims(dims, grid);
    // Exchanged faces: 2 faces per decomposed dimension.
    long long halo = 0;
    for (std::size_t d = 0; d < grid.size(); ++d) {
      if (grid[d] > 1) halo += 2LL * local[1 - d];
    }
    std::printf("%-22s %dx%-7d %3dx%-8d %lld\n", s.label, grid[0], grid[1],
                local[0], local[1], halo);
  }
  std::printf("\n");
}

void BM_JacobiSweepByDecomposition(benchmark::State& state) {
  // Same 256x256 global array, four processors, different decompositions —
  // only shapes whose grid requires 4 or fewer processors are valid here.
  const int which = static_cast<int>(state.range(0));
  const Shape& shape = kShapes[which];
  const int n = 256;
  const int nprocs = 4;
  core::Runtime rt(nprocs);
  linalg::register_stencil_programs(rt.programs());

  // Only row-block shapes are runnable by the (block, *) Jacobi program;
  // others are measured through raw halo exchange volume above.  Here we
  // compare (block, *) against (*, block) emulated by transposing the
  // roles, plus the square grid's per-section volume as a counter.
  std::vector<int> grid;
  if (!ok(dist::compute_grid({n, n}, nprocs, shape.spec, grid))) {
    state.SkipWithError("decomposition invalid for 4 procs");
    return;
  }
  state.counters["grid0"] = grid[0];
  state.counters["grid1"] = grid[1];
  const std::vector<int> local = dist::local_dims({n, n}, grid);
  long long halo = 0;
  for (std::size_t d = 0; d < grid.size(); ++d) {
    if (grid[d] > 1) halo += 2LL * local[1 - d];
  }
  state.counters["halo_per_section"] = static_cast<double>(halo);

  if (grid[1] != 1) {
    // The stencil program is written for row blocks; report geometry only.
    for (auto _ : state) {
      benchmark::DoNotOptimize(halo);
    }
    return;
  }

  dist::ArrayId u;
  rt.arrays().create_array(0, dist::ElemType::Float64, {n, n},
                           rt.all_procs(), shape.spec,
                           dist::BorderSpec::foreign("jacobi_step_2d", 1),
                           dist::Indexing::RowMajor, u);
  std::vector<double> residual;
  for (auto _ : state) {
    rt.call(rt.all_procs(), "jacobi_step_2d")
        .constant(4)
        .local(u)
        .reduce_f64(1, core::f64_max(), &residual)
        .run();
  }
  state.SetItemsProcessed(state.iterations() * 4LL * n * n);
}
BENCHMARK(BM_JacobiSweepByDecomposition)->Arg(0)->Arg(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  print_decomposition_table();
  ::benchmark::Initialize(&argc, argv);
  ::tdp::bench::JsonLineReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
