// Figure 3.2/3.3 — control and data flow of a distributed call.
//
// Measures the pure call/return machinery of §3.3.2.2 (spawn one copy per
// processor, resolve parameters, run, merge, resume the caller) as a
// function of group size and parameter mix.  The paper's claim is
// structural — the caller suspends, one copy runs per processor, control
// returns after all copies — so the series of interest is how overhead
// grows with P and with the number of parameters to marshal.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/distributed_call.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using namespace tdp;

void BM_EmptyCall(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  core::Runtime rt(p);
  rt.programs().add("noop", [](spmd::SpmdContext&, core::CallArgs&) {});
  const std::vector<int> procs = rt.all_procs();
  const std::uint64_t msgs_before = rt.machine().messages_sent();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.call(procs, "noop").run());
  }
  state.counters["procs"] = p;
  state.counters["messages"] = benchmark::Counter(
      static_cast<double>(rt.machine().messages_sent() - msgs_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EmptyCall)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->UseRealTime();

void BM_CallWithAllParameterKinds(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  core::Runtime rt(p);
  rt.programs().add("touch_all",
                    [](spmd::SpmdContext&, core::CallArgs& args) {
                      benchmark::DoNotOptimize(args.in<int>(0));
                      benchmark::DoNotOptimize(args.index(1));
                      benchmark::DoNotOptimize(args.local(2).f64());
                      args.status(3) = 0;
                      args.reduce_f64(4)[0] = 1.0;
                    });
  const std::vector<int> procs = rt.all_procs();
  dist::ArrayId a = bench::make_vector(rt, 64 * p, procs);
  std::vector<double> out;
  const std::uint64_t msgs_before = rt.machine().messages_sent();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.call(procs, "touch_all")
                                 .constant(7)
                                 .index()
                                 .local(a)
                                 .status()
                                 .reduce_f64(1, core::f64_sum(), &out)
                                 .run());
  }
  state.counters["procs"] = p;
  state.counters["messages"] = benchmark::Counter(
      static_cast<double>(rt.machine().messages_sent() - msgs_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CallWithAllParameterKinds)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_CallerSuspendsUntilAllCopiesReturn(benchmark::State& state) {
  // The useful-work baseline: copies do real work (inner product with an
  // internal allreduce); call overhead amortises as work grows.
  const int p = 4;
  const int local_m = static_cast<int>(state.range(0));
  core::Runtime rt(p);
  linalg::register_programs(rt.programs());
  const std::vector<int> procs = rt.all_procs();
  dist::ArrayId v1 = bench::make_vector(rt, p * local_m, procs);
  dist::ArrayId v2 = bench::make_vector(rt, p * local_m, procs);
  std::vector<double> out;
  const std::uint64_t msgs_before = rt.machine().messages_sent();
  for (auto _ : state) {
    rt.call(procs, "test_iprdv")
        .constant(procs)
        .constant(p)
        .index()
        .constant(p * local_m)
        .constant(local_m)
        .local(v1)
        .local(v2)
        .reduce_f64(1, core::f64_max(), &out)
        .run();
  }
  state.counters["local_m"] = local_m;
  state.counters["messages"] = benchmark::Counter(
      static_cast<double>(rt.machine().messages_sent() - msgs_before),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * p * local_m);
}
BENCHMARK(BM_CallerSuspendsUntilAllCopiesReturn)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(262144)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
