// Figure 2.4 — generation of animation frames.
//
// The inherently-parallel problem class: K independent data-parallel
// programs with no communication among them.  Shape claim: rendering K
// frames concurrently on K disjoint groups costs about the time of one
// frame; rendering them one after another costs K times that.
#include <benchmark/benchmark.h>

#include <complex>

#include "bench_util.hpp"
#include "pcn/process.hpp"

namespace {

using namespace tdp;

constexpr int kGroup = 2;
constexpr int kSize = 48;

void register_renderer(core::Runtime& rt) {
  rt.programs().add(
      "render_frame", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
        const double phase = args.in<double>(0);
        const dist::LocalSectionView& img = args.local(1);
        const int rows = img.interior_dims[0];
        const int cols = img.interior_dims[1];
        const std::complex<double> c{0.7885 * std::cos(phase),
                                     0.7885 * std::sin(phase)};
        const int row0 = ctx.index() * rows;
        for (int r = 0; r < rows; ++r) {
          for (int col = 0; col < cols; ++col) {
            std::complex<double> z{
                -1.6 + 3.2 * (row0 + r) / (rows * ctx.nprocs()),
                -1.6 + 3.2 * col / cols};
            int it = 0;
            while (std::norm(z) < 4.0 && it < 128) {
              z = z * z + c;
              ++it;
            }
            img.f64()[static_cast<std::size_t>(r) * cols + col] = it;
          }
        }
      });
}

struct Frames {
  int nframes;
  core::Runtime rt;
  std::vector<std::vector<int>> groups;
  std::vector<dist::ArrayId> images;

  explicit Frames(int k) : nframes(k), rt(k * kGroup) {
    register_renderer(rt);
    for (int f = 0; f < k; ++f) {
      groups.push_back(util::node_array(f * kGroup, 1, kGroup));
      images.push_back(
          bench::make_matrix_rows(rt, kSize, kSize, groups.back()));
    }
  }

  void render(int f) {
    // Simulated node compute (see bench_util.hpp) so independent frames
    // overlap on any host, as on a real multicomputer.
    bench::simulated_node_work(5.0);
    rt.call(groups[static_cast<std::size_t>(f)], "render_frame")
        .constant(0.4 * f)
        .local(images[static_cast<std::size_t>(f)])
        .run();
  }
};

void BM_FramesSequential(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Frames frames(k);
  for (auto _ : state) {
    for (int f = 0; f < k; ++f) frames.render(f);
  }
  state.counters["frames"] = k;
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_FramesSequential)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FramesConcurrent(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Frames frames(k);
  for (auto _ : state) {
    pcn::ProcessGroup top;
    for (int f = 0; f < k; ++f) {
      top.spawn([&, f] { frames.render(f); });
    }
    top.join();
  }
  state.counters["frames"] = k;
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_FramesConcurrent)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

TDP_BENCH_MAIN();
